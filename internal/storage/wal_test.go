package storage

import (
	"fmt"
	"testing"
	"time"
)

// walWriteSet builds n distinct records' worth of writes.
func walWriteSet(n int) []struct {
	key  string
	cell Cell
} {
	set := make([]struct {
		key  string
		cell Cell
	}, n)
	for i := range set {
		set[i].key = fmt.Sprintf("key-%02d", i%7) // overwrites included
		set[i].cell = Cell{
			Version:   Version{Timestamp: time.Duration(i + 1), Seq: uint64(i + 1)},
			Value:     []byte(fmt.Sprintf("value-%03d", i)),
			Tombstone: i%5 == 4,
		}
	}
	return set
}

// TestWALRecordRoundTrip pins the record codec.
func TestWALRecordRoundTrip(t *testing.T) {
	var buf []byte
	set := walWriteSet(12)
	for _, w := range set {
		buf = appendWALRecord(buf, w.key, w.cell)
	}
	off := 0
	for i, w := range set {
		key, cell, n, err := decodeWALRecord(buf, off)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if key != w.key || cell.Version != w.cell.Version ||
			string(cell.Value) != string(w.cell.Value) || cell.Tombstone != w.cell.Tombstone {
			t.Fatalf("record %d round-trip: got %q %+v", i, key, cell)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

// TestWALReplayEveryBoundary crashes the engine with the WAL synced at
// every record boundary in turn: recovery must land on exactly the
// consistent prefix up to that boundary, never a partial or phantom
// record.
func TestWALReplayEveryBoundary(t *testing.T) {
	set := walWriteSet(20)
	// Record the encoded size of each record to find the boundaries.
	sizes := make([]int, len(set))
	for i, w := range set {
		sizes[i] = len(appendWALRecord(nil, w.key, w.cell))
	}
	for cut := 0; cut <= len(set); cut++ {
		// SyncBytes huge: we control the durability point by hand.
		e := NewLSMEngine(Options{FlushLimit: 0, SyncBytes: 1 << 30, MaxRuns: 64})
		for i, w := range set {
			e.Apply(w.key, w.cell)
			if i == cut-1 {
				e.sync()
			}
		}
		e.Crash()
		rs := e.Recover()
		if rs.TornTail {
			t.Fatalf("cut %d: clean boundary reported torn", cut)
		}
		// Expected state: the prefix set[:cut] applied to a fresh engine.
		want := NewMemEngine(0)
		applied := uint64(0)
		for _, w := range set[:cut] {
			want.Apply(w.key, w.cell)
			applied++
		}
		if rs.WALRecords > applied {
			t.Fatalf("cut %d: replayed %d records, appended only %d", cut, rs.WALRecords, applied)
		}
		if e.Len() != want.Len() {
			t.Fatalf("cut %d: %d keys recovered, want %d", cut, e.Len(), want.Len())
		}
		for _, k := range want.Keys() {
			wc, _ := want.Peek(k)
			gc, ok := e.Peek(k)
			if !ok || gc.Version != wc.Version || string(gc.Value) != string(wc.Value) || gc.Tombstone != wc.Tombstone {
				t.Fatalf("cut %d key %s: got %+v ok=%v want %+v", cut, k, gc, ok, wc)
			}
		}
	}
}

// TestWALReplayTornFinalRecord hand-corrupts the durable log mid-record:
// replay must keep the consistent prefix and flag the torn tail.
func TestWALReplayTornFinalRecord(t *testing.T) {
	set := walWriteSet(6)
	e := NewLSMEngine(Options{FlushLimit: 0, SyncBytes: 0, MaxRuns: 64})
	for _, w := range set {
		e.Apply(w.key, w.cell)
	}
	w := e.wal.(*memWAL)
	// Tear the final record: chop half of it off, then pretend the torn
	// state is what the disk held.
	last := len(appendWALRecord(nil, set[len(set)-1].key, set[len(set)-1].cell))
	w.buf = w.buf[:len(w.buf)-last/2]
	w.synced = len(w.buf)

	e.Crash()
	rs := e.Recover()
	if !rs.TornTail {
		t.Fatal("torn tail not detected")
	}
	if rs.WALRecords != uint64(len(set)-1) {
		t.Fatalf("replayed %d records, want %d (consistent prefix)", rs.WALRecords, len(set)-1)
	}

	// Corrupt (not torn) record: flip a payload byte under the checksum.
	e2 := NewLSMEngine(Options{FlushLimit: 0, SyncBytes: 0, MaxRuns: 64})
	for _, w := range set {
		e2.Apply(w.key, w.cell)
	}
	w2 := e2.wal.(*memWAL)
	w2.buf[len(w2.buf)-walCRCBytes-2] ^= 0xff
	e2.Crash()
	rs2 := e2.Recover()
	if !rs2.TornTail {
		t.Fatal("corrupt record not detected")
	}
	if rs2.WALRecords != uint64(len(set)-1) {
		t.Fatalf("replayed %d records past corruption, want %d", rs2.WALRecords, len(set)-1)
	}
}
