package storage

// MemEngine is the volatile map engine: cells live in a flat map with
// flush and size *accounting* only (nothing is written anywhere). It is
// the original engine of the store and remains the default. Crash drops
// every cell — a crashed node recovers an empty store and relies on
// hinted handoff and anti-entropy to catch back up.
type MemEngine struct {
	cells map[string]Cell
	keys  keyIndex

	memBytes   int64 // bytes resident in the memtable since last flush
	totalBytes int64 // bytes resident overall (live data size)
	flushLimit int64 // flush threshold; 0 disables flush accounting
	crashed    bool  // Crash happened; Recover has not run yet
	stats      Stats
}

// NewMemEngine returns an empty engine with the given memtable flush
// threshold (0 disables flush accounting).
func NewMemEngine(flushLimit int64) *MemEngine {
	return &MemEngine{cells: make(map[string]Cell), flushLimit: flushLimit}
}

// Get returns the resident cell for key.
func (e *MemEngine) Get(key string) (Cell, bool) {
	e.stats.Reads++
	c, ok := e.cells[key]
	return c, ok
}

// Peek is Get without touching the read counters.
func (e *MemEngine) Peek(key string) (Cell, bool) {
	c, ok := e.cells[key]
	return c, ok
}

// Apply merges cell into the engine under last-write-wins and reports
// whether it became the resident version.
func (e *MemEngine) Apply(key string, c Cell) bool {
	e.stats.Writes++
	old, exists := e.cells[key]
	if exists && !c.Version.After(old.Version) {
		e.stats.Rejected++
		return false
	}
	if !exists {
		e.keys.add(key)
	}
	e.cells[key] = c
	delta := int64(c.Size())
	if exists {
		delta -= int64(old.Size())
	}
	e.totalBytes += delta
	e.memBytes += int64(c.Size())
	if e.flushLimit > 0 && e.memBytes >= e.flushLimit {
		e.Flush()
	}
	return true
}

// Delete applies a tombstone with the given version.
func (e *MemEngine) Delete(key string, v Version) bool {
	return e.Apply(key, Cell{Version: v, Tombstone: true})
}

// Len reports the number of resident keys (tombstones included).
func (e *MemEngine) Len() int { return len(e.cells) }

// Bytes reports the live data size in bytes.
func (e *MemEngine) Bytes() int64 { return e.totalBytes }

// Stats reports the engine counters.
func (e *MemEngine) Stats() Stats { return e.stats }

// KeyCount reports the number of keys ever inserted.
func (e *MemEngine) KeyCount() int { return e.keys.count() }

// KeyAt returns the i-th key in insertion order.
func (e *MemEngine) KeyAt(i int) string { return e.keys.at(i) }

// Keys returns all resident keys in sorted order; used by tests and
// full-scan anti-entropy on small stores. Callers must not mutate the
// returned slice.
func (e *MemEngine) Keys() []string { return e.keys.sortedKeys() }

// Scan visits resident cells with from <= key < to in sorted order.
func (e *MemEngine) Scan(from, to string, fn func(key string, c Cell) bool) {
	scanSorted(e.keys.sortedKeys(), from, to, e.Peek, fn)
}

// Range calls fn for every key in unspecified order until fn returns
// false. Mutating the engine during Range is not allowed.
func (e *MemEngine) Range(fn func(key string, c Cell) bool) {
	for k, c := range e.cells {
		if !fn(k, c) {
			return
		}
	}
}

// Flush accounts one memtable flush (no data moves anywhere).
func (e *MemEngine) Flush() {
	if e.memBytes == 0 {
		return
	}
	e.stats.Flushes++
	e.stats.FlushedBytes += uint64(e.memBytes)
	e.memBytes = 0
}

// Crash drops every cell: nothing in this engine is durable. Counters
// survive (they are metering infrastructure, not process state).
func (e *MemEngine) Crash() {
	e.crashed = true
	e.stats.Crashes++
	e.cells = make(map[string]Cell)
	e.keys.reset()
	e.memBytes, e.totalBytes = 0, 0
}

// Recover starts empty — there is no durable state to rebuild. The node
// catches up through hinted handoff and anti-entropy. Like the LSM
// engine, Recover without a preceding Crash is a no-op.
func (e *MemEngine) Recover() RecoverStats {
	if !e.crashed {
		return RecoverStats{}
	}
	e.crashed = false
	e.stats.Replays++
	return RecoverStats{}
}

// Close releases nothing: the engine holds no external resources.
func (e *MemEngine) Close() error { return nil }
