package storage

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

// engineUnderTest builds each engine kind with settings that exercise
// its structure (tiny flush limit so the LSM engine actually seals runs
// and compacts mid-sequence).
var engineUnderTest = []struct {
	name  string
	build func() Engine
}{
	{"mem", func() Engine { return NewMemEngine(0) }},
	{"lsm", func() Engine { return NewLSMEngine(Options{FlushLimit: 200, SyncBytes: 0, MaxRuns: 3}) }},
}

// snapshot captures the full observable state: every key's resident cell
// via Scan (sorted, tombstones included).
func snapshot(e Engine) string {
	out := ""
	e.Scan("", "", func(k string, c Cell) bool {
		out += fmt.Sprintf("%s=%v:%q:%v;", k, c.Version, c.Value, c.Tombstone)
		return true
	})
	return out
}

// TestApplyCommutativeIdempotentAcrossEngines is the replica-application
// property the repair paths rely on, asserted for BOTH engines: applying
// any permutation of a write set — with duplicated (idempotence) and
// tombstone entries — converges every engine to the identical Get/Scan
// state, and the two engines agree with each other.
func TestApplyCommutativeIdempotentAcrossEngines(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		count := int(n%24) + 4
		type write struct {
			key  string
			cell Cell
		}
		writes := make([]write, count)
		for i := range writes {
			c := Cell{
				// Timestamp collisions on purpose: Seq breaks ties.
				Version: Version{Timestamp: time.Duration(i / 3), Seq: uint64(i)},
				Value:   []byte(fmt.Sprintf("v%d-%d", seed%97, i)),
			}
			if i%6 == 5 {
				c.Tombstone = true
				c.Value = nil
			}
			writes[i] = write{key: fmt.Sprintf("key%d", i%5), cell: c}
		}
		// Duplicate a random sample (idempotence under redelivery).
		for i := 0; i < count/3; i++ {
			writes = append(writes, writes[rng.IntN(count)])
		}

		apply := func(build func() Engine, perm []int) string {
			e := build()
			for _, idx := range perm {
				e.Apply(writes[idx].key, writes[idx].cell)
			}
			return snapshot(e)
		}

		base := make([]int, len(writes))
		for i := range base {
			base[i] = i
		}
		want := apply(engineUnderTest[0].build, base)
		for trial := 0; trial < 4; trial++ {
			perm := append([]int(nil), base...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			for _, eng := range engineUnderTest {
				if got := apply(eng.build, perm); got != want {
					t.Logf("%s diverged:\n got %s\nwant %s", eng.name, got, want)
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestEnginesAgreeAfterCrashRecovery: with per-record sync the LSM
// engine must come back from a crash holding exactly what a never-crashed
// engine holds.
func TestEnginesAgreeAfterCrashRecovery(t *testing.T) {
	mem := NewMemEngine(0)
	lsm := NewLSMEngine(Options{FlushLimit: 300, SyncBytes: 0, MaxRuns: 3})
	var seq uint64
	write := func(k, v string, tomb bool) {
		seq++
		c := Cell{Version: Version{Timestamp: time.Duration(seq), Seq: seq}, Tombstone: tomb}
		if !tomb {
			c.Value = []byte(v)
		}
		mem.Apply(k, c)
		lsm.Apply(k, c)
	}
	for i := 0; i < 50; i++ {
		write(fmt.Sprintf("k%d", i%11), fmt.Sprintf("v%d", i), i%7 == 6)
		if i == 25 {
			lsm.Crash()
			lsm.Recover()
		}
	}
	lsm.Crash()
	lsm.Recover()
	if got, want := snapshot(lsm), snapshot(mem); got != want {
		t.Fatalf("post-recovery state diverged:\n got %s\nwant %s", got, want)
	}
}
