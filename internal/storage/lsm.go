package storage

import "sort"

// runEntry is one key's cell inside an immutable sorted run.
type runEntry struct {
	key  string
	cell Cell
}

// run is an immutable sorted run sealed from a memtable flush (or built
// by compaction). Runs are "on disk": they survive Crash.
type run struct {
	entries []runEntry
	bytes   int64
}

// find binary-searches the run for key.
func (r *run) find(key string) (Cell, bool) {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].key >= key })
	if i < len(r.entries) && r.entries[i].key == key {
		return r.entries[i].cell, true
	}
	return Cell{}, false
}

// LSMEngine is the durable LSM-lite engine: an append-only WAL ahead of
// an in-memory memtable, immutable sorted runs sealed by flushes, and
// size-tiered compaction merging runs once enough accumulate.
//
// Reads merge across the memtable and the runs newest-first. Because
// Apply enforces last-write-wins against the resident version before
// admitting a cell, a memtable entry always supersedes every run entry
// for its key, and a newer run's entry always supersedes an older run's —
// so the first hit in memtable → newest run → ... → oldest run order is
// the resident cell.
//
// Crash drops the memtable and the un-fsynced WAL tail; the runs and the
// fsynced WAL prefix survive. Recover reloads the runs and replays that
// prefix, stopping at the first torn or corrupt record (consistent-prefix
// recovery); whatever was lost past the durability point comes back via
// hinted handoff and anti-entropy, exactly like a lagging replica.
//
// Tombstones flow through WAL, memtable, runs and compaction like any
// other cell: compaction keeps them even when they win (no GC grace
// tracking here), so a late out-of-order write older than the deletion
// still loses — the property that keeps replica application commutative.
type LSMEngine struct {
	opts Options
	wal  walog
	mem  map[string]Cell
	runs []run // oldest first
	keys keyIndex

	memBytes    int64
	totalBytes  int64
	pendingRecs uint64 // records appended since the last sync
	replaying   bool   // Recover replay in flight: skip re-counting writes
	crashed     bool   // Crash happened; Recover has not run yet
	scratch     []byte // record-encode buffer, reused across appends
	stats       Stats
}

// NewLSMEngine builds an LSM engine from opts. A file-backed WAL is used
// when opts.Path is set (panics on I/O errors: storage engines run under
// deterministic drivers with no error channel, and a broken WAL file is
// fatal to the node anyway).
func NewLSMEngine(opts Options) *LSMEngine {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 4
	}
	e := &LSMEngine{opts: opts, mem: make(map[string]Cell)}
	if opts.Path != "" {
		w, err := newFileWAL(opts.Path)
		if err != nil {
			panic(err.Error())
		}
		e.wal = w
	} else {
		e.wal = &memWAL{}
	}
	return e
}

// Get returns the resident cell for key via merge-read.
func (e *LSMEngine) Get(key string) (Cell, bool) {
	e.stats.Reads++
	return e.Peek(key)
}

// Peek is Get without touching the read counters.
func (e *LSMEngine) Peek(key string) (Cell, bool) {
	if c, ok := e.mem[key]; ok {
		return c, ok
	}
	for i := len(e.runs) - 1; i >= 0; i-- {
		if c, ok := e.runs[i].find(key); ok {
			return c, true
		}
	}
	return Cell{}, false
}

// Apply merges cell into the engine under last-write-wins: the accepted
// cell is WAL-logged before it lands in the memtable.
func (e *LSMEngine) Apply(key string, c Cell) bool {
	if !e.replaying {
		e.stats.Writes++
	}
	old, exists := e.Peek(key)
	if exists && !c.Version.After(old.Version) {
		if !e.replaying {
			e.stats.Rejected++
		}
		return false
	}
	e.logRecord(key, c)
	_, inMem := e.mem[key]
	e.mem[key] = c
	if !exists {
		e.keys.add(key)
	}
	delta := int64(c.Size())
	if exists {
		delta -= int64(old.Size())
	}
	e.totalBytes += delta
	if inMem {
		e.memBytes += delta
	} else {
		e.memBytes += int64(c.Size())
	}
	if e.opts.FlushLimit > 0 && e.memBytes >= e.opts.FlushLimit {
		e.Flush()
	}
	return true
}

// logRecord appends the cell to the WAL and syncs per the cadence. The
// encode buffer is engine-owned scratch (both logs copy the record out
// before returning), so the steady-state append allocates nothing.
func (e *LSMEngine) logRecord(key string, c Cell) {
	e.scratch = appendWALRecord(e.scratch[:0], key, c)
	rec := e.scratch
	e.wal.append(rec)
	e.stats.WALAppends++
	e.stats.WALBytes += uint64(len(rec))
	e.pendingRecs++
	if e.opts.SyncBytes <= 0 || e.wal.unsynced() >= e.opts.SyncBytes {
		e.sync()
	}
}

func (e *LSMEngine) sync() {
	if e.pendingRecs == 0 {
		return
	}
	e.wal.sync()
	e.stats.WALSyncs++
	e.pendingRecs = 0
}

// Delete applies a tombstone with the given version.
func (e *LSMEngine) Delete(key string, v Version) bool {
	return e.Apply(key, Cell{Version: v, Tombstone: true})
}

// Len reports the number of resident keys (tombstones included).
func (e *LSMEngine) Len() int { return e.keys.count() }

// Bytes reports the live (resident) data size in bytes.
func (e *LSMEngine) Bytes() int64 { return e.totalBytes }

// Stats reports the engine counters plus the current run shape.
func (e *LSMEngine) Stats() Stats {
	s := e.stats
	s.Runs = len(e.runs)
	for i := range e.runs {
		s.RunEntries += len(e.runs[i].entries)
	}
	return s
}

// KeyCount reports the number of distinct keys resident.
func (e *LSMEngine) KeyCount() int { return e.keys.count() }

// KeyAt returns the i-th key in insertion order (post-recovery the order
// is rebuild order: run entries oldest-run-first, then WAL replay).
func (e *LSMEngine) KeyAt(i int) string { return e.keys.at(i) }

// Keys returns all resident keys in sorted order. Callers must not
// mutate the returned slice.
func (e *LSMEngine) Keys() []string { return e.keys.sortedKeys() }

// Scan visits resident cells with from <= key < to in sorted order,
// merge-reading each key (tombstones included).
func (e *LSMEngine) Scan(from, to string, fn func(key string, c Cell) bool) {
	scanSorted(e.keys.sortedKeys(), from, to, e.Peek, fn)
}

// Range calls fn for every resident cell in unspecified order until fn
// returns false.
func (e *LSMEngine) Range(fn func(key string, c Cell) bool) {
	for _, k := range e.keys.list {
		c, ok := e.Peek(k)
		if !ok {
			continue
		}
		if !fn(k, c) {
			return
		}
	}
}

// Flush seals the memtable into an immutable sorted run, truncates the
// WAL (the run is durable now) and triggers size-tiered compaction when
// enough runs piled up.
func (e *LSMEngine) Flush() {
	if len(e.mem) == 0 {
		return
	}
	keys := make([]string, 0, len(e.mem))
	for k := range e.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	r := run{entries: make([]runEntry, 0, len(keys))}
	for _, k := range keys {
		c := e.mem[k]
		r.entries = append(r.entries, runEntry{key: k, cell: c})
		r.bytes += int64(c.Size())
	}
	e.runs = append(e.runs, r)
	e.stats.Flushes++
	e.stats.FlushedBytes += uint64(e.memBytes)
	clear(e.mem)
	e.memBytes = 0
	e.wal.reset()
	e.pendingRecs = 0
	if len(e.runs) >= e.opts.MaxRuns {
		e.compact()
	}
}

// compact merges every run into one, keeping only the newest version per
// key (size-tiered full merge — one tier, sized for this repo).
// Tombstones survive the merge when they win; see the type comment.
func (e *LSMEngine) compact() {
	if len(e.runs) <= 1 {
		return
	}
	var inBytes int64
	total := 0
	for i := range e.runs {
		inBytes += e.runs[i].bytes
		total += len(e.runs[i].entries)
	}
	winners := make(map[string]Cell, total)
	for i := range e.runs { // oldest → newest; newer entries supersede
		for _, ent := range e.runs[i].entries {
			if old, ok := winners[ent.key]; !ok || ent.cell.Version.After(old.Version) {
				winners[ent.key] = ent.cell
			}
		}
	}
	keys := make([]string, 0, len(winners))
	for k := range winners {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	merged := run{entries: make([]runEntry, 0, len(keys))}
	for _, k := range keys {
		c := winners[k]
		merged.entries = append(merged.entries, runEntry{key: k, cell: c})
		merged.bytes += int64(c.Size())
	}
	e.runs = e.runs[:0]
	e.runs = append(e.runs, merged)
	e.stats.Compactions++
	e.stats.CompactedBytes += uint64(inBytes)
}

// Crash kills the process: the memtable and the un-fsynced WAL tail are
// lost; the sorted runs and the fsynced WAL prefix survive. The engine
// is unusable until Recover.
func (e *LSMEngine) Crash() {
	e.crashed = true
	e.stats.Crashes++
	e.stats.LostRecords += e.pendingRecs
	e.pendingRecs = 0
	e.wal.crash()
	e.mem = make(map[string]Cell)
	e.memBytes, e.totalBytes = 0, 0
	e.keys.reset()
}

// Recover rebuilds the engine from durable state: the key index and size
// accounting are recomputed from the runs, then the durable WAL prefix is
// replayed record by record into a fresh memtable/WAL, stopping at the
// first torn or corrupt record. Replayed mutations go through the normal
// Apply path (minus the operation counters), so they are re-logged and
// re-synced — the recovered state is durable again when Recover returns.
// Recover is only meaningful after Crash; on a running engine it is a
// no-op (re-running it would duplicate the key index and discard the
// durable WAL).
func (e *LSMEngine) Recover() RecoverStats {
	if !e.crashed {
		return RecoverStats{}
	}
	e.crashed = false
	e.stats.Replays++
	rs := RecoverStats{RunsLoaded: len(e.runs)}

	// Rebuild index and accounting from the runs (oldest first: the
	// resident winner per key is the newest run's entry).
	winners := make(map[string]Cell)
	for i := range e.runs {
		rs.RunEntries += len(e.runs[i].entries)
		for _, ent := range e.runs[i].entries {
			if old, ok := winners[ent.key]; !ok {
				e.keys.add(ent.key)
				winners[ent.key] = ent.cell
			} else if ent.cell.Version.After(old.Version) {
				winners[ent.key] = ent.cell
			}
		}
	}
	for _, c := range winners {
		e.totalBytes += int64(c.Size())
	}

	// Replay the durable WAL prefix through the normal apply path.
	log := append([]byte(nil), e.wal.durable()...)
	e.wal.reset()
	e.pendingRecs = 0
	e.replaying = true
	off := 0
	for off < len(log) {
		key, cell, n, err := decodeWALRecord(log, off)
		if err != nil {
			// Torn or corrupt record: keep the consistent prefix.
			rs.TornTail = true
			break
		}
		e.Apply(key, cell)
		rs.WALRecords++
		rs.WALBytes += uint64(n)
		off += n
	}
	e.replaying = false
	e.sync()
	rs.Keys = e.keys.count()
	return rs
}

// Close releases the WAL file (no-op for the in-memory log).
func (e *LSMEngine) Close() error { return e.wal.close() }
