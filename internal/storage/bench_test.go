package storage

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkWALAppend measures the WAL-logged apply path of the LSM
// engine (encode + append + per-record sync + memtable insert), the
// per-mutation overhead the durable engine adds over the map engine.
func BenchmarkWALAppend(b *testing.B) {
	e := NewLSMEngine(Options{FlushLimit: 0, SyncBytes: 0, MaxRuns: 64})
	val := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		e.Apply(fmt.Sprintf("user%08d", i%4096), Cell{
			Version: Version{Timestamp: time.Duration(seq), Seq: seq},
			Value:   val,
		})
	}
}

// BenchmarkMergeRead measures Get across a populated memtable plus
// three sorted runs — the read amplification of the LSM-lite layout,
// memtable-hit and run-probe paths both in the mix.
func BenchmarkMergeRead(b *testing.B) {
	e := NewLSMEngine(Options{FlushLimit: 0, SyncBytes: 1 << 20, MaxRuns: 64})
	const records = 4096
	var seq uint64
	for r := 0; r < 4; r++ {
		for i := r; i < records; i += 4 { // striped: each layer holds 1/4 of the keys
			seq++
			e.Apply(fmt.Sprintf("user%08d", i), Cell{
				Version: Version{Timestamp: time.Duration(seq), Seq: seq},
				Value:   make([]byte, 128),
			})
		}
		if r < 3 {
			e.Flush() // three sealed runs; the last stripe stays in the memtable
		}
	}
	keys := make([]string, records)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%08d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Get(keys[i%records]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkSnapshotStream measures the full rejoin-streaming pipeline:
// snapshot-iterate a populated LSM engine, serialize every cell through
// the framed codec, and apply the chunks on a fresh mem engine — the
// per-cell cost of moving a replica's range during Join/Decommission.
func BenchmarkSnapshotStream(b *testing.B) {
	src := NewLSMEngine(Options{FlushLimit: 64 << 10, SyncBytes: 1 << 20, MaxRuns: 8})
	const records = 4096
	for i := 0; i < records; i++ {
		seq := uint64(i + 1)
		src.Apply(fmt.Sprintf("user%08d", i), Cell{
			Version: Version{Timestamp: time.Duration(seq), Seq: seq},
			Value:   make([]byte, 128),
		})
	}
	var chunk []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += records {
		dst := NewMemEngine(0)
		it := src.Snapshot()
		for {
			k, c, ok := it.Next()
			if !ok {
				break
			}
			chunk = EncodeCell(chunk[:0], k, c)
			if _, _, err := ApplyEncoded(dst, chunk); err != nil {
				b.Fatal(err)
			}
		}
		if dst.Len() != records {
			b.Fatalf("streamed %d of %d cells", dst.Len(), records)
		}
	}
}

// BenchmarkMemApply pins the volatile engine's apply path for
// comparison.
func BenchmarkMemApply(b *testing.B) {
	e := NewMemEngine(0)
	val := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		e.Apply(fmt.Sprintf("user%08d", i%4096), Cell{
			Version: Version{Timestamp: time.Duration(seq), Seq: seq},
			Value:   val,
		})
	}
}
