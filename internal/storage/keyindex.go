package storage

import "sort"

// keyIndex tracks the first-insertion order of keys (deterministic
// sampling) plus an incrementally maintained sorted view, shared by both
// engines. The sorted view holds the first sortedN keys of list in
// sorted order; newer insertions are merged in on demand instead of
// re-sorting the whole set.
type keyIndex struct {
	list    []string
	sorted  []string
	sortedN int
}

func (x *keyIndex) add(k string) { x.list = append(x.list, k) }

func (x *keyIndex) count() int { return len(x.list) }

func (x *keyIndex) at(i int) string { return x.list[i] }

func (x *keyIndex) reset() { *x = keyIndex{} }

// sortedKeys returns all keys in sorted order. Only keys inserted since
// the last call are sorted (O(k log k)) and merged into the cache (O(n)),
// so repeated calls on a stable store cost nothing. Callers must not
// mutate the returned slice.
func (x *keyIndex) sortedKeys() []string {
	if x.sortedN == len(x.list) {
		return x.sorted
	}
	fresh := make([]string, len(x.list)-x.sortedN)
	copy(fresh, x.list[x.sortedN:])
	sort.Strings(fresh)
	if len(x.sorted) == 0 {
		x.sorted = fresh
	} else {
		x.sorted = mergeSorted(x.sorted, fresh)
	}
	x.sortedN = len(x.list)
	return x.sorted
}

// mergeSorted merges two sorted, duplicate-free string slices.
func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// scanSorted drives an Engine.Scan over a sorted key view using peek for
// cell lookup (shared by both engines).
func scanSorted(keys []string, from, to string, peek func(string) (Cell, bool), fn func(string, Cell) bool) {
	i := 0
	if from != "" {
		i = sort.SearchStrings(keys, from)
	}
	for ; i < len(keys); i++ {
		k := keys[i]
		if to != "" && k >= to {
			return
		}
		if c, ok := peek(k); ok {
			if !fn(k, c) {
				return
			}
		}
	}
}
