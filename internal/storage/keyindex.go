package storage

import (
	"sort"

	"repro/internal/ring"
)

// keyIndex tracks the first-insertion order of keys (deterministic
// sampling) plus an incrementally maintained sorted view, shared by both
// engines. Each key's ring token is learned at insertion, so
// range-restricted snapshots (SnapshotRanges) filter by token without
// rehashing the keyspace. The sorted view holds the first sortedN keys
// of list in sorted order; newer insertions are merged in on demand
// instead of re-sorting the whole set.
type keyIndex struct {
	list    []string
	toks    []ring.Token // toks[i] == ring.KeyToken(list[i])
	sorted  []string
	stoks   []ring.Token // parallel to sorted
	sortedN int
}

func (x *keyIndex) add(k string) {
	x.list = append(x.list, k)
	x.toks = append(x.toks, ring.KeyToken(k))
}

func (x *keyIndex) count() int { return len(x.list) }

func (x *keyIndex) at(i int) string { return x.list[i] }

func (x *keyIndex) reset() { *x = keyIndex{} }

// sortedKeys returns all keys in sorted order. Only keys inserted since
// the last call are sorted (O(k log k)) and merged into the cache (O(n)),
// so repeated calls on a stable store cost nothing. Callers must not
// mutate the returned slice.
func (x *keyIndex) sortedKeys() []string {
	keys, _ := x.sortedView()
	return keys
}

// sortedView returns all keys in sorted order with their ring tokens in
// a parallel slice. Callers must not mutate either slice.
func (x *keyIndex) sortedView() ([]string, []ring.Token) {
	if x.sortedN == len(x.list) {
		return x.sorted, x.stoks
	}
	n := len(x.list) - x.sortedN
	order := make([]int, n)
	for i := range order {
		order[i] = x.sortedN + i
	}
	sort.Slice(order, func(i, j int) bool { return x.list[order[i]] < x.list[order[j]] })
	freshK := make([]string, n)
	freshT := make([]ring.Token, n)
	for i, idx := range order {
		freshK[i] = x.list[idx]
		freshT[i] = x.toks[idx]
	}
	if len(x.sorted) == 0 {
		x.sorted, x.stoks = freshK, freshT
	} else {
		x.sorted, x.stoks = mergeSorted(x.sorted, x.stoks, freshK, freshT)
	}
	x.sortedN = len(x.list)
	return x.sorted, x.stoks
}

// mergeSorted merges two sorted, duplicate-free key slices along with
// their parallel token slices.
func mergeSorted(a []string, at []ring.Token, b []string, bt []ring.Token) ([]string, []ring.Token) {
	out := make([]string, 0, len(a)+len(b))
	outT := make([]ring.Token, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out, outT = append(out, a[i]), append(outT, at[i])
			i++
		} else {
			out, outT = append(out, b[j]), append(outT, bt[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	outT = append(outT, at[i:]...)
	return append(out, b[j:]...), append(outT, bt[j:]...)
}

// scanSorted drives an Engine.Scan over a sorted key view using peek for
// cell lookup (shared by both engines).
func scanSorted(keys []string, from, to string, peek func(string) (Cell, bool), fn func(string, Cell) bool) {
	i := 0
	if from != "" {
		i = sort.SearchStrings(keys, from)
	}
	for ; i < len(keys); i++ {
		k := keys[i]
		if to != "" && k >= to {
			return
		}
		if c, ok := peek(k); ok {
			if !fn(k, c) {
				return
			}
		}
	}
}
