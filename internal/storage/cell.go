package storage

import (
	"fmt"
	"time"
)

// Version orders writes. Timestamp is the coordinator's clock when the
// write was accepted; Seq is a cluster-unique sequence number breaking
// ties deterministically.
type Version struct {
	Timestamp time.Duration
	Seq       uint64
}

// Zero reports whether v is the zero version (no write).
func (v Version) Zero() bool { return v.Timestamp == 0 && v.Seq == 0 }

// After reports whether v supersedes o under last-write-wins.
func (v Version) After(o Version) bool {
	if v.Timestamp != o.Timestamp {
		return v.Timestamp > o.Timestamp
	}
	return v.Seq > o.Seq
}

// Compare returns -1, 0 or 1 as v is older than, equal to or newer than o.
func (v Version) Compare(o Version) int {
	switch {
	case v == o:
		return 0
	case v.After(o):
		return 1
	default:
		return -1
	}
}

// String formats the version for logs.
func (v Version) String() string { return fmt.Sprintf("v(%v#%d)", v.Timestamp, v.Seq) }

// Cell is one versioned value. A tombstone marks a deletion that still
// participates in last-write-wins reconciliation.
type Cell struct {
	Version   Version
	Value     []byte
	Tombstone bool
}

// Size reports the approximate resident bytes of the cell.
func (c Cell) Size() int { return len(c.Value) + 24 }
