// Package storage implements the per-node storage engine of the
// replicated store: versioned last-write-wins cells held in a memtable
// with flush and size accounting. Conflict resolution follows Cassandra's
// model: the cell with the highest (timestamp, sequence) wins regardless
// of arrival order, which makes replica application commutative and
// idempotent — the property anti-entropy and hinted handoff rely on.
package storage

import (
	"fmt"
	"sort"
	"time"
)

// Version orders writes. Timestamp is the coordinator's clock when the
// write was accepted; Seq is a cluster-unique sequence number breaking
// ties deterministically.
type Version struct {
	Timestamp time.Duration
	Seq       uint64
}

// Zero reports whether v is the zero version (no write).
func (v Version) Zero() bool { return v.Timestamp == 0 && v.Seq == 0 }

// After reports whether v supersedes o under last-write-wins.
func (v Version) After(o Version) bool {
	if v.Timestamp != o.Timestamp {
		return v.Timestamp > o.Timestamp
	}
	return v.Seq > o.Seq
}

// Compare returns -1, 0 or 1 as v is older than, equal to or newer than o.
func (v Version) Compare(o Version) int {
	switch {
	case v == o:
		return 0
	case v.After(o):
		return 1
	default:
		return -1
	}
}

// String formats the version for logs.
func (v Version) String() string { return fmt.Sprintf("v(%v#%d)", v.Timestamp, v.Seq) }

// Cell is one versioned value. A tombstone marks a deletion that still
// participates in last-write-wins reconciliation.
type Cell struct {
	Version   Version
	Value     []byte
	Tombstone bool
}

// Size reports the approximate resident bytes of the cell.
func (c Cell) Size() int { return len(c.Value) + 24 }

// Engine is a single node's key-value storage. It is not safe for
// concurrent use; node actors access it from one goroutine/event at a
// time.
type Engine struct {
	cells   map[string]Cell
	keyList []string // keys in first-insertion order, for deterministic sampling

	// Sorted-view cache for Keys(): sorted holds the first sortedN keys
	// of keyList in sorted order; newer insertions are merged in
	// incrementally on demand instead of re-sorting the whole map.
	sorted  []string
	sortedN int

	memBytes      int64 // bytes resident in the memtable since last flush
	totalBytes    int64 // bytes resident overall (live data size)
	flushLimit    int64 // flush threshold; 0 disables flush accounting
	flushes       uint64
	flushedBytes  uint64
	reads, writes uint64
	rejected      uint64 // writes dropped as older than the resident cell
}

// NewEngine returns an empty engine with the given memtable flush
// threshold (0 disables flush accounting).
func NewEngine(flushLimit int64) *Engine {
	return &Engine{cells: make(map[string]Cell), flushLimit: flushLimit}
}

// Get returns the resident cell for key.
func (e *Engine) Get(key string) (Cell, bool) {
	e.reads++
	c, ok := e.cells[key]
	return c, ok
}

// Peek is Get without touching the read counters (used by repair and
// anti-entropy bookkeeping).
func (e *Engine) Peek(key string) (Cell, bool) {
	c, ok := e.cells[key]
	return c, ok
}

// Apply merges cell into the engine under last-write-wins and reports
// whether it became the resident version.
func (e *Engine) Apply(key string, c Cell) bool {
	e.writes++
	old, exists := e.cells[key]
	if exists && !c.Version.After(old.Version) {
		e.rejected++
		return false
	}
	if !exists {
		e.keyList = append(e.keyList, key)
	}
	e.cells[key] = c
	delta := int64(c.Size())
	if exists {
		delta -= int64(old.Size())
	}
	e.totalBytes += delta
	e.memBytes += int64(c.Size())
	if e.flushLimit > 0 && e.memBytes >= e.flushLimit {
		e.flushes++
		e.flushedBytes += uint64(e.memBytes)
		e.memBytes = 0
	}
	return true
}

// Delete applies a tombstone with the given version.
func (e *Engine) Delete(key string, v Version) bool {
	return e.Apply(key, Cell{Version: v, Tombstone: true})
}

// Len reports the number of resident keys (tombstones included).
func (e *Engine) Len() int { return len(e.cells) }

// Bytes reports the live data size in bytes.
func (e *Engine) Bytes() int64 { return e.totalBytes }

// Stats reports operation counters.
func (e *Engine) Stats() (reads, writes, rejected, flushes uint64) {
	return e.reads, e.writes, e.rejected, e.flushes
}

// FlushedBytes reports the cumulative bytes written out by memtable
// flushes (a proxy for disk write traffic, used by the power model).
func (e *Engine) FlushedBytes() uint64 { return e.flushedBytes }

// KeyCount reports the number of keys ever inserted (map iteration order
// is nondeterministic in Go, so deterministic sampling goes through the
// insertion-ordered key list instead).
func (e *Engine) KeyCount() int { return len(e.keyList) }

// KeyAt returns the i-th key in insertion order.
func (e *Engine) KeyAt(i int) string { return e.keyList[i] }

// Keys returns all resident keys in sorted order; used by tests and
// full-scan anti-entropy on small stores. The sorted view is cached and
// maintained incrementally: only keys inserted since the last call are
// sorted (O(k log k)) and merged into the cache (O(n)), so repeated
// calls on a stable store cost nothing instead of re-sorting the whole
// map every round. Callers must not mutate the returned slice.
func (e *Engine) Keys() []string {
	if e.sortedN == len(e.keyList) {
		return e.sorted
	}
	fresh := make([]string, len(e.keyList)-e.sortedN)
	copy(fresh, e.keyList[e.sortedN:])
	sort.Strings(fresh)
	if len(e.sorted) == 0 {
		e.sorted = fresh
	} else {
		e.sorted = mergeSorted(e.sorted, fresh)
	}
	e.sortedN = len(e.keyList)
	return e.sorted
}

// mergeSorted merges two sorted, duplicate-free string slices.
func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Range calls fn for every key in unspecified order until fn returns
// false. Mutating the engine during Range is not allowed.
func (e *Engine) Range(fn func(key string, c Cell) bool) {
	for k, c := range e.cells {
		if !fn(k, c) {
			return
		}
	}
}
