// Package storage implements the per-node storage engines of the
// replicated store: versioned last-write-wins cells behind a common
// Engine interface. Conflict resolution follows Cassandra's model: the
// cell with the highest (timestamp, sequence) wins regardless of arrival
// order, which makes replica application commutative and idempotent — the
// property anti-entropy and hinted handoff rely on, whichever engine
// holds the data.
//
// Two engines implement the interface:
//
//   - MemEngine: the original volatile map with flush *accounting* only.
//     Crash loses everything; Recover starts empty.
//   - LSMEngine: a durable LSM-lite — append-only WAL, an in-memory
//     memtable that flushes to immutable sorted runs, merge-reads across
//     runs with tombstone handling, and size-tiered compaction. Crash
//     loses only the un-fsynced WAL tail; Recover reloads the runs and
//     replays the durable WAL prefix.
package storage

import "repro/internal/ring"

// Engine is a single node's key-value storage. It is not safe for
// concurrent use; node actors access it from one goroutine/event at a
// time.
//
// The lifecycle methods model the process, not the network: Flush forces
// a durability point, Crash kills the process (volatile state is lost;
// what survives depends on the engine), Recover rebuilds from whatever
// survived. Network-level failure (traffic dropped, state intact) is the
// transport's Fail/Recover, not the engine's.
type Engine interface {
	// Get returns the resident cell for key, counting the read.
	// Tombstones are returned with ok=true; callers decide visibility.
	Get(key string) (Cell, bool)
	// Peek is Get without touching the read counters (used by repair and
	// anti-entropy bookkeeping).
	Peek(key string) (Cell, bool)
	// Apply merges cell into the engine under last-write-wins and
	// reports whether it became the resident version.
	Apply(key string, c Cell) bool
	// Delete applies a tombstone with the given version.
	Delete(key string, v Version) bool

	// Len reports the number of resident keys (tombstones included).
	Len() int
	// Bytes reports the live data size in bytes (resident cells only,
	// superseded versions in older runs excluded).
	Bytes() int64
	// KeyCount reports the number of distinct keys ever inserted (map
	// iteration order is nondeterministic in Go, so deterministic
	// sampling goes through the insertion-ordered key list instead).
	KeyCount() int
	// KeyAt returns the i-th key in insertion order.
	KeyAt(i int) string
	// Keys returns all resident keys in sorted order. Callers must not
	// mutate the returned slice.
	Keys() []string
	// Scan calls fn for resident cells with from <= key < to in sorted
	// key order until fn returns false; empty bounds are unbounded.
	// Tombstones are included.
	Scan(from, to string, fn func(key string, c Cell) bool)
	// Range calls fn for every resident cell in unspecified order until
	// fn returns false. Mutating the engine during Range is not allowed.
	Range(fn func(key string, c Cell) bool)
	// Snapshot returns a point-in-time iterator over the resident cells
	// in sorted key order (the snapshot-streaming source for bootstrap
	// and rejoin). The LSM engine seals its memtable first, so the
	// snapshot is exactly its immutable sorted runs; the mem engine
	// copies its cells out. Mutations after the call do not appear.
	Snapshot() SnapshotIter
	// SnapshotRanges is Snapshot restricted to the given token arcs:
	// only resident cells whose key token (ring.KeyToken) falls inside
	// one of the ranges appear, still in sorted key order. The list must
	// follow ring's ordering invariant (ascending by end token, at most
	// one wrapping arc and that one first — the shape ring.Diff emits).
	// The LSM engine seals its memtable first exactly like Snapshot; an
	// empty range set yields an empty snapshot.
	SnapshotRanges(ranges []ring.Range) SnapshotIter

	// Stats reports the engine's operation and durability counters.
	Stats() Stats
	// Flush forces a durability point: the LSM engine seals its memtable
	// into a sorted run; the mem engine only accounts the flush.
	Flush()
	// Crash simulates a process kill: volatile state is dropped. The
	// engine must not be used again until Recover.
	Crash()
	// Recover rebuilds the engine from its durable state (runs plus the
	// fsynced WAL prefix for the LSM engine; nothing for the mem engine)
	// and reports what was recovered. Without a preceding Crash it is a
	// no-op.
	Recover() RecoverStats
	// Close releases external resources (the file-backed WAL); the
	// engine must not be used afterwards.
	Close() error
}

// Stats aggregates an engine's operation and durability counters.
// Counters are metering infrastructure and survive Crash/Recover (the
// experiments bill cumulative resource usage, not per-incarnation usage).
type Stats struct {
	Reads    uint64 // Get calls
	Writes   uint64 // Apply calls
	Rejected uint64 // writes dropped as older than the resident cell

	Flushes      uint64 // memtable seals (LSM) or flush-accounting events (mem)
	FlushedBytes uint64 // cumulative bytes written out by flushes
	Crashes      uint64
	Replays      uint64 // Recover calls

	// LSM-only counters; zero for MemEngine.
	WALAppends     uint64 // records appended to the WAL
	WALBytes       uint64 // bytes appended to the WAL
	WALSyncs       uint64 // fsync (durability) points
	LostRecords    uint64 // un-fsynced records dropped by crashes
	Runs           int    // resident sorted runs
	RunEntries     int    // entries across resident runs (superseded included)
	Compactions    uint64
	CompactedBytes uint64 // bytes rewritten by compaction
}

// RecoverStats reports what one Recover call rebuilt.
type RecoverStats struct {
	RunsLoaded int    // durable sorted runs found
	RunEntries int    // entries across those runs
	WALRecords uint64 // records replayed from the durable WAL prefix
	WALBytes   uint64 // bytes of WAL replayed
	TornTail   bool   // replay stopped at a torn or corrupt record
	Keys       int    // distinct keys resident after recovery
}

// Kind selects a storage engine implementation.
type Kind int

const (
	// Mem is the volatile map engine (the default): flush accounting
	// only, a crash loses every write.
	Mem Kind = iota
	// LSM is the durable WAL + LSM-lite engine: a crash loses only the
	// un-fsynced WAL tail.
	LSM
)

// String names the kind for tables and flags.
func (k Kind) String() string {
	if k == LSM {
		return "lsm"
	}
	return "mem"
}

// Options parameterizes engine construction. The zero value is a valid
// MemEngine configuration.
type Options struct {
	// FlushLimit is the memtable flush threshold in bytes; 0 disables
	// flushing (the LSM engine then keeps everything in memtable + WAL).
	FlushLimit int64
	// SyncBytes is the LSM WAL fsync cadence: the log syncs once the
	// un-fsynced tail reaches this many bytes. 0 syncs every record
	// (nothing is ever lost to a crash).
	SyncBytes int64
	// MaxRuns triggers size-tiered compaction when the number of sorted
	// runs reaches it; 0 defaults to 4.
	MaxRuns int
	// Path, when set, backs the LSM WAL with a real file (the live
	// engine maps WAL latencies to real I/O this way); empty keeps the
	// WAL as a deterministic in-memory byte log (simulation).
	Path string
}

// New builds an engine of the given kind.
func New(kind Kind, opts Options) Engine {
	if kind == LSM {
		return NewLSMEngine(opts)
	}
	return NewMemEngine(opts.FlushLimit)
}
