package storage

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/ring"
)

func rangeTestEngines() []struct {
	name string
	mk   func() Engine
} {
	return []struct {
		name string
		mk   func() Engine
	}{
		{"mem", func() Engine { return NewMemEngine(0) }},
		{"lsm", func() Engine { return NewLSMEngine(Options{FlushLimit: 512, SyncBytes: 0, MaxRuns: 16}) }},
	}
}

func drain(it SnapshotIter) []runEntry {
	var out []runEntry
	for {
		k, c, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, runEntry{key: k, cell: c})
	}
}

// TestSnapshotRangesMatchesFilteredFull pins the equivalence contract:
// for any range set, SnapshotRanges yields exactly the full snapshot's
// cells whose tokens fall in the ranges, in the same (sorted key)
// order — including tombstones and across LSM runs with superseded
// versions.
func TestSnapshotRangesMatchesFilteredFull(t *testing.T) {
	ids := make([]netsim.NodeID, 8)
	for i := range ids {
		ids[i] = netsim.NodeID(i)
	}
	r := ring.New(ids, 16, 7)
	for _, tc := range rangeTestEngines() {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.mk()
			fillEngine(e, 300, 1)
			for i := 0; i < 300; i += 7 {
				e.Apply(fmt.Sprintf("snap%05d", i), Cell{
					Version: Version{Timestamp: time.Duration(1000 + i), Seq: 1000 + uint64(i)},
					Value:   []byte("newer"),
				})
			}
			for i := 3; i < 300; i += 31 {
				e.Delete(fmt.Sprintf("snap%05d", i), Version{Timestamp: time.Duration(5000 + i), Seq: 5000 + uint64(i)})
			}
			for _, owner := range ids {
				ranges := r.Ranges(owner)
				full := drain(e.Snapshot())
				var want []runEntry
				for _, ent := range full {
					if ring.RangesContain(ranges, ring.KeyToken(ent.key)) {
						want = append(want, ent)
					}
				}
				got := drain(e.SnapshotRanges(ranges))
				if len(got) != len(want) {
					t.Fatalf("owner %d: %d cells, want %d", owner, len(got), len(want))
				}
				for i := range got {
					if got[i].key != want[i].key || got[i].cell.Version != want[i].cell.Version {
						t.Fatalf("owner %d: cell %d = %q@%v, want %q@%v",
							owner, i, got[i].key, got[i].cell.Version, want[i].key, want[i].cell.Version)
					}
				}
			}
		})
	}
}

// TestSnapshotRangesEmptyAndWrap pins the edges: an empty range set
// yields an empty snapshot, and a wrapping arc crossing token 0 picks
// up keys on both sides of the origin.
func TestSnapshotRangesEmptyAndWrap(t *testing.T) {
	for _, tc := range rangeTestEngines() {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.mk()
			fillEngine(e, 200, 1)
			if got := drain(e.SnapshotRanges(nil)); len(got) != 0 {
				t.Fatalf("empty range set yielded %d cells", len(got))
			}
			// A wrapping arc covering (mid, 42] — everything except the
			// (42, mid] span — plus its complement must repartition the
			// full snapshot exactly. The split point is the median key
			// token (FNV tokens of short sequential keys cluster, so a
			// fixed constant could land outside the cluster).
			var toks []ring.Token
			for _, k := range e.Keys() {
				toks = append(toks, ring.KeyToken(k))
			}
			sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
			mid := toks[len(toks)/2]
			wrap := ring.Range{Start: mid, End: 42}
			if !wrap.Wraps() {
				t.Fatal("test arc does not wrap")
			}
			inWrap := drain(e.SnapshotRanges([]ring.Range{wrap}))
			rest := drain(e.SnapshotRanges([]ring.Range{{Start: 42, End: mid}}))
			full := drain(e.Snapshot())
			if len(inWrap)+len(rest) != len(full) {
				t.Fatalf("wrap %d + rest %d != full %d", len(inWrap), len(rest), len(full))
			}
			if len(inWrap) == 0 || len(rest) == 0 {
				t.Fatalf("degenerate split %d/%d; wrap arc not exercised", len(inWrap), len(rest))
			}
			for _, ent := range inWrap {
				if !wrap.Contains(ring.KeyToken(ent.key)) {
					t.Fatalf("key %q token outside wrap arc", ent.key)
				}
			}
		})
	}
}

// TestSnapshotRangesPointInTime pins that a range snapshot does not see
// mutations applied after it was taken (same contract as Snapshot).
func TestSnapshotRangesPointInTime(t *testing.T) {
	for _, tc := range rangeTestEngines() {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.mk()
			fillEngine(e, 50, 1)
			all := []ring.Range{{Start: 0, End: 0}} // full ring
			it := e.SnapshotRanges(all)
			e.Apply("snap00000", Cell{Version: Version{Timestamp: 1 << 40, Seq: 1 << 40}, Value: []byte("late")})
			e.Apply("zzz-late", Cell{Version: Version{Timestamp: 1 << 40, Seq: 1 << 41}, Value: []byte("late")})
			got := drain(it)
			for _, ent := range got {
				if string(ent.cell.Value) == "late" {
					t.Fatalf("post-snapshot write %q leaked into range snapshot", ent.key)
				}
			}
			if len(got) != 50 {
				t.Fatalf("full-ring range snapshot has %d cells, want 50", len(got))
			}
		})
	}
}

// TestSnapshotRangesLSMFlushSideEffect pins that SnapshotRanges seals
// the LSM memtable exactly like Snapshot — even for an empty range set
// — so the range-addressed stream path keeps flush behavior (and the
// determinism transcripts that depend on it) identical.
func TestSnapshotRangesLSMFlushSideEffect(t *testing.T) {
	e := NewLSMEngine(Options{FlushLimit: 1 << 20, SyncBytes: 0, MaxRuns: 16})
	fillEngine(e, 40, 1)
	before := e.Stats().Runs
	drain(e.SnapshotRanges(nil))
	if after := e.Stats().Runs; after != before+1 {
		t.Fatalf("empty-range snapshot did not seal memtable: runs %d -> %d", before, after)
	}
}

// TestSnapshotRangesCrashReplayRemaining models a source crashing
// mid-stream: the first half of the planned ranges was already shipped;
// after Crash+Recover the replay requests only the remaining ranges and
// the receiver still converges to the full owned set, without
// re-reading the delivered arcs.
func TestSnapshotRangesCrashReplayRemaining(t *testing.T) {
	ids := make([]netsim.NodeID, 8)
	for i := range ids {
		ids[i] = netsim.NodeID(i)
	}
	r := ring.New(ids, 16, 7)
	src := NewLSMEngine(Options{FlushLimit: 256, SyncBytes: 0, MaxRuns: 16})
	fillEngine(src, 400, 1)
	src.Flush() // durability point: everything survives the crash

	owned := r.Ranges(ids[3])
	if len(owned) < 2 {
		t.Fatalf("owner has %d arcs; need at least 2 to split", len(owned))
	}
	half := len(owned) / 2
	dst := NewMemEngine(0)
	apply := func(ranges []ring.Range) int {
		it := src.SnapshotRanges(ranges)
		var buf []byte
		n := 0
		for {
			k, c, ok := it.Next()
			if !ok {
				break
			}
			buf = EncodeCell(buf, k, c)
			n++
		}
		if _, _, err := ApplyEncoded(dst, buf); err != nil {
			t.Fatalf("apply: %v", err)
		}
		return n
	}
	sent := apply(owned[:half])

	src.Crash()
	if rs := src.Recover(); rs.WALRecords == 0 && src.Len() == 0 {
		t.Fatal("recovery lost the durable store")
	}
	resent := apply(owned[half:])

	want := drain(src.SnapshotRanges(owned))
	if got := dst.Len(); got != len(want) {
		t.Fatalf("receiver has %d cells after replay, want %d", got, len(want))
	}
	if sent+resent != len(want) {
		t.Fatalf("replay re-read delivered arcs: %d+%d != %d", sent, resent, len(want))
	}
}
