package storage

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// lsmOpts returns small-scale options that force flushes and compaction.
func lsmOpts() Options {
	return Options{FlushLimit: 256, SyncBytes: 0, MaxRuns: 3}
}

func fill(e Engine, n int, seq *uint64) {
	for i := 0; i < n; i++ {
		*seq++
		e.Apply(fmt.Sprintf("k%03d", i), Cell{
			Version: Version{Timestamp: time.Duration(*seq), Seq: *seq},
			Value:   []byte(fmt.Sprintf("val-%d", *seq)),
		})
	}
}

func TestLSMFlushSealsRuns(t *testing.T) {
	e := NewLSMEngine(lsmOpts())
	var seq uint64
	fill(e, 40, &seq)
	st := e.Stats()
	if st.Flushes == 0 {
		t.Fatal("no flush despite exceeding the limit")
	}
	if st.Runs == 0 {
		t.Fatal("flush sealed no run")
	}
	// Every key must still be readable across memtable and runs.
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("k%03d", i)
		if _, ok := e.Get(k); !ok {
			t.Fatalf("key %s lost after flush", k)
		}
	}
}

func TestLSMMergeReadNewestWins(t *testing.T) {
	e := NewLSMEngine(Options{FlushLimit: 0, MaxRuns: 8})
	e.Apply("k", Cell{Version: Version{Timestamp: 1, Seq: 1}, Value: []byte("old")})
	e.Flush() // "old" now lives in a run
	e.Apply("k", Cell{Version: Version{Timestamp: 2, Seq: 2}, Value: []byte("mid")})
	e.Flush() // newer run shadows the older one
	e.Apply("k", Cell{Version: Version{Timestamp: 3, Seq: 3}, Value: []byte("new")})
	// memtable shadows both runs
	c, ok := e.Get("k")
	if !ok || string(c.Value) != "new" {
		t.Fatalf("merge-read returned %q", c.Value)
	}
	if e.Stats().Runs != 2 {
		t.Fatalf("runs = %d", e.Stats().Runs)
	}
	if e.Bytes() != int64(c.Size()) {
		t.Fatalf("Bytes() = %d, want resident size %d", e.Bytes(), c.Size())
	}
}

func TestLSMCompaction(t *testing.T) {
	e := NewLSMEngine(Options{FlushLimit: 0, MaxRuns: 3})
	var seq uint64
	for round := 0; round < 3; round++ {
		fill(e, 10, &seq) // overwrites the same 10 keys each round
		e.Flush()
	}
	st := e.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction despite reaching MaxRuns")
	}
	if st.Runs != 1 {
		t.Fatalf("compaction left %d runs", st.Runs)
	}
	if st.RunEntries != 10 {
		t.Fatalf("compacted run holds %d entries, want 10 (superseded versions dropped)", st.RunEntries)
	}
	// Newest version per key survives.
	c, ok := e.Get("k005")
	if !ok || c.Version.Seq <= 20 {
		t.Fatalf("resident cell after compaction: %+v", c)
	}
}

func TestLSMTombstoneThroughCompaction(t *testing.T) {
	e := NewLSMEngine(Options{FlushLimit: 0, MaxRuns: 2})
	e.Apply("k", Cell{Version: Version{Timestamp: 1, Seq: 1}, Value: []byte("x")})
	e.Flush()
	e.Delete("k", Version{Timestamp: 2, Seq: 2})
	e.Flush() // two runs → compaction merges them
	if e.Stats().Compactions == 0 {
		t.Fatal("expected compaction")
	}
	c, ok := e.Get("k")
	if !ok || !c.Tombstone {
		t.Fatal("tombstone dropped by compaction")
	}
	// A write older than the deletion must still lose (the reason the
	// tombstone is kept).
	if e.Apply("k", Cell{Version: Version{Timestamp: 1, Seq: 9}, Value: []byte("late")}) {
		t.Fatal("pre-deletion write resurrected the key")
	}
	// A newer write resurrects.
	if !e.Apply("k", Cell{Version: Version{Timestamp: 3, Seq: 10}, Value: []byte("y")}) {
		t.Fatal("post-deletion write rejected")
	}
}

func TestLSMCrashLosesOnlyUnsyncedTail(t *testing.T) {
	// Sync cadence huge: nothing auto-syncs after the explicit point.
	e := NewLSMEngine(Options{FlushLimit: 0, SyncBytes: 1 << 30, MaxRuns: 8})
	e.Apply("durable", Cell{Version: Version{Timestamp: 1, Seq: 1}, Value: []byte("d")})
	e.Flush() // run: durable
	e.Apply("synced", Cell{Version: Version{Timestamp: 2, Seq: 2}, Value: []byte("s")})
	e.sync() // WAL prefix: durable
	e.Apply("lost", Cell{Version: Version{Timestamp: 3, Seq: 3}, Value: []byte("l")})

	e.Crash()
	rs := e.Recover()
	if rs.RunsLoaded != 1 || rs.WALRecords != 1 {
		t.Fatalf("recover stats: %+v", rs)
	}
	if e.Stats().LostRecords != 1 {
		t.Fatalf("lost records = %d", e.Stats().LostRecords)
	}
	if _, ok := e.Get("durable"); !ok {
		t.Fatal("run entry lost")
	}
	if _, ok := e.Get("synced"); !ok {
		t.Fatal("synced WAL record lost")
	}
	if _, ok := e.Get("lost"); ok {
		t.Fatal("un-fsynced record survived the crash")
	}
	if rs.Keys != 2 || e.Len() != 2 {
		t.Fatalf("post-recovery keys = %d / %d", rs.Keys, e.Len())
	}
}

func TestLSMRecoverRebuildsAccounting(t *testing.T) {
	e := NewLSMEngine(Options{FlushLimit: 300, SyncBytes: 0, MaxRuns: 4})
	var seq uint64
	fill(e, 30, &seq)
	wantBytes := e.Bytes()
	wantKeys := append([]string(nil), e.Keys()...)

	e.Crash()
	e.Recover()
	if e.Bytes() != wantBytes {
		t.Fatalf("Bytes() after recovery = %d, want %d", e.Bytes(), wantBytes)
	}
	got := e.Keys()
	if len(got) != len(wantKeys) {
		t.Fatalf("Keys() len = %d, want %d", len(got), len(wantKeys))
	}
	for i := range got {
		if got[i] != wantKeys[i] {
			t.Fatalf("Keys()[%d] = %s, want %s", i, got[i], wantKeys[i])
		}
	}
	// Everything was synced (SyncBytes 0): nothing may be lost.
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%03d", i)
		if _, ok := e.Get(k); !ok {
			t.Fatalf("key %s lost across crash with per-record sync", k)
		}
	}
}

func TestLSMScanOrderedWithTombstones(t *testing.T) {
	e := NewLSMEngine(Options{FlushLimit: 0, MaxRuns: 4})
	for i, k := range []string{"d", "b", "a", "c"} {
		e.Apply(k, Cell{Version: Version{Timestamp: 1, Seq: uint64(i + 1)}, Value: []byte(k)})
	}
	e.Flush()
	e.Delete("b", Version{Timestamp: 2, Seq: 9})
	var seen []string
	tombs := 0
	e.Scan("a", "d", func(k string, c Cell) bool {
		seen = append(seen, k)
		if c.Tombstone {
			tombs++
		}
		return true
	})
	if fmt.Sprint(seen) != "[a b c]" {
		t.Fatalf("scan order = %v", seen)
	}
	if tombs != 1 {
		t.Fatalf("tombstones seen = %d", tombs)
	}
}

func TestLSMFileWAL(t *testing.T) {
	dir := t.TempDir()
	opts := Options{FlushLimit: 0, SyncBytes: 1 << 30, MaxRuns: 8, Path: filepath.Join(dir, "wal.log")}
	e := NewLSMEngine(opts)
	e.Apply("a", Cell{Version: Version{Timestamp: 1, Seq: 1}, Value: []byte("x")})
	e.sync()
	e.Apply("b", Cell{Version: Version{Timestamp: 2, Seq: 2}, Value: []byte("y")})
	e.Crash() // truncates the real file to the fsynced offset
	rs := e.Recover()
	if rs.WALRecords != 1 || rs.TornTail {
		t.Fatalf("file WAL recovery: %+v", rs)
	}
	if _, ok := e.Get("a"); !ok {
		t.Fatal("synced record lost from file WAL")
	}
	if _, ok := e.Get("b"); ok {
		t.Fatal("unsynced record survived file WAL crash")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
