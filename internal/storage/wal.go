package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"
)

// The write-ahead log. Every accepted mutation is appended as one framed
// record before it lands in the memtable; the fsynced prefix of the log
// is what survives a crash. Under simulation the log is a deterministic
// in-memory byte buffer with an explicit durable watermark; under the
// live engine it can be a real file, so appends and syncs map to real
// I/O (NoKV's wal layering, sized for this repo).
//
// Record framing, after NoKV's manager:
//
//	+--------+-------+-----------+--------+
//	| Length | Type  | Payload   | CRC32  |
//	| [4]    | [1]   | [N]       | [4]    |
//	+--------+-------+-----------+--------+
//
// Length covers Type+Payload; the CRC covers Type+Payload. A cell
// payload is keyLen(4) key ts(8) seq(8) tombstone(1) valLen(4) value.

const (
	walRecordCell  = byte(1)
	walHeaderBytes = 4
	walCRCBytes    = 4
)

var (
	// errTornRecord marks a record cut short by a crash mid-append: the
	// replay keeps the consistent prefix before it.
	errTornRecord = errors.New("storage: torn wal record")
	// errCorruptRecord marks a checksum or framing mismatch.
	errCorruptRecord = errors.New("storage: corrupt wal record")
)

// appendWALRecord encodes one cell record onto buf and returns the
// extended slice.
func appendWALRecord(buf []byte, key string, c Cell) []byte {
	payload := 1 + 4 + len(key) + 8 + 8 + 1 + 4 + len(c.Value) // type byte included in length
	var hdr [walHeaderBytes]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(payload))
	buf = append(buf, hdr[:]...)
	body := len(buf)
	buf = append(buf, walRecordCell)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.Version.Timestamp))
	buf = binary.BigEndian.AppendUint64(buf, c.Version.Seq)
	tomb := byte(0)
	if c.Tombstone {
		tomb = 1
	}
	buf = append(buf, tomb)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Value)))
	buf = append(buf, c.Value...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[body:]))
}

// decodeWALRecord decodes the record starting at off. It returns the key,
// cell and total encoded size. errTornRecord means the log ends inside
// the record (a crash mid-append); errCorruptRecord means framing or
// checksum damage.
func decodeWALRecord(log []byte, off int) (key string, c Cell, n int, err error) {
	rest := log[off:]
	if len(rest) < walHeaderBytes {
		return "", Cell{}, 0, errTornRecord
	}
	length := int(binary.BigEndian.Uint32(rest))
	if length < 1+4+8+8+1+4 {
		return "", Cell{}, 0, errCorruptRecord
	}
	total := walHeaderBytes + length + walCRCBytes
	if len(rest) < total {
		return "", Cell{}, 0, errTornRecord
	}
	body := rest[walHeaderBytes : walHeaderBytes+length]
	sum := binary.BigEndian.Uint32(rest[walHeaderBytes+length:])
	if crc32.ChecksumIEEE(body) != sum {
		return "", Cell{}, 0, errCorruptRecord
	}
	if body[0] != walRecordCell {
		return "", Cell{}, 0, errCorruptRecord
	}
	p := body[1:]
	keyLen := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if len(p) < keyLen+8+8+1+4 {
		return "", Cell{}, 0, errCorruptRecord
	}
	key = string(p[:keyLen])
	p = p[keyLen:]
	c.Version.Timestamp = time.Duration(binary.BigEndian.Uint64(p))
	c.Version.Seq = binary.BigEndian.Uint64(p[8:])
	c.Tombstone = p[16] == 1
	valLen := int(binary.BigEndian.Uint32(p[17:]))
	p = p[21:]
	if len(p) != valLen {
		return "", Cell{}, 0, errCorruptRecord
	}
	if valLen > 0 {
		c.Value = append([]byte(nil), p...)
	}
	return key, c, total, nil
}

// walog is the byte-log substrate of the LSM engine's WAL: an in-memory
// buffer under simulation, a real file under the live engine. Appends
// buffer; sync moves the durable watermark; crash discards everything
// past it.
type walog interface {
	append(rec []byte)
	sync()
	unsynced() int64
	// durable returns the fsynced prefix (what survives a crash). The
	// returned slice is only valid until the next mutation.
	durable() []byte
	// reset discards the whole log (the memtable it covered was flushed
	// to a durable run).
	reset()
	// crash discards the un-fsynced tail.
	crash()
	close() error
}

// memWAL is the deterministic in-memory log used under simulation.
type memWAL struct {
	buf    []byte
	synced int
}

func (w *memWAL) append(rec []byte) { w.buf = append(w.buf, rec...) }
func (w *memWAL) sync()             { w.synced = len(w.buf) }
func (w *memWAL) unsynced() int64   { return int64(len(w.buf) - w.synced) }
func (w *memWAL) durable() []byte   { return w.buf[:w.synced] }
func (w *memWAL) reset()            { w.buf, w.synced = w.buf[:0], 0 }
func (w *memWAL) crash()            { w.buf = w.buf[:w.synced] }
func (w *memWAL) close() error      { return nil }

// fileWAL backs the log with a real file: append writes, sync fsyncs,
// crash truncates to the fsynced offset (what a power cut could leave).
type fileWAL struct {
	f        *os.File
	appended int64
	synced   int64
}

func newFileWAL(path string) (*fileWAL, error) {
	//repolint:allow simpure live-only file WAL; the sim engine runs on memWAL
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: wal: %w", err)
	}
	return &fileWAL{f: f}, nil
}

func (w *fileWAL) append(rec []byte) {
	n, err := w.f.WriteAt(rec, w.appended)
	if err != nil {
		panic(fmt.Sprintf("storage: wal append: %v", err))
	}
	w.appended += int64(n)
}

func (w *fileWAL) sync() {
	if err := w.f.Sync(); err != nil {
		panic(fmt.Sprintf("storage: wal sync: %v", err))
	}
	w.synced = w.appended
}

func (w *fileWAL) unsynced() int64 { return w.appended - w.synced }

func (w *fileWAL) durable() []byte {
	buf := make([]byte, w.synced)
	if _, err := w.f.ReadAt(buf, 0); err != nil {
		panic(fmt.Sprintf("storage: wal read: %v", err))
	}
	return buf
}

func (w *fileWAL) reset() {
	//repolint:allow simpure live-only file WAL; the sim engine runs on memWAL
	if err := w.f.Truncate(0); err != nil {
		panic(fmt.Sprintf("storage: wal truncate: %v", err))
	}
	w.appended, w.synced = 0, 0
}

func (w *fileWAL) crash() {
	//repolint:allow simpure live-only file WAL; the sim engine runs on memWAL
	if err := w.f.Truncate(w.synced); err != nil {
		panic(fmt.Sprintf("storage: wal truncate: %v", err))
	}
	w.appended = w.synced
}

func (w *fileWAL) close() error { return w.f.Close() }
