package storage

// Snapshot streaming: an engine exposes its resident cells as a
// point-in-time iterator in sorted key order, and the wire codec frames
// cells with the WAL's length+CRC record format so a stream can be
// chunked, sized for the traffic meter, and verified on arrival. This is
// the mechanism behind bootstrap/rejoin streaming at the store layer
// (Cassandra's bootstrap and repair streaming): the sender walks a
// consistent snapshot, the receiver applies each framed cell through the
// normal last-write-wins path, so a stream is idempotent and can overlap
// hints and anti-entropy without conflict.
//
// SnapshotRanges is the range-addressed form: the key index remembers
// each key's ring token, so membership streams ask for exactly the
// moved arcs (ring.Diff) and the engine walks only those cells.

import "repro/internal/ring"

// SnapshotIter walks a consistent point-in-time snapshot of an engine in
// sorted key order. Next returns ok=false when the snapshot is
// exhausted. Mutations made after the snapshot was taken do not appear.
type SnapshotIter interface {
	Next() (key string, c Cell, ok bool)
	// Remaining reports an upper bound on the cells the iterator has
	// left (exact for the mem engine; for the LSM engine superseded run
	// entries that will be skipped are still counted).
	Remaining() int
}

// memSnapshot is a materialized snapshot (cells copied at snapshot time).
type memSnapshot struct {
	entries []runEntry
	pos     int
}

func (s *memSnapshot) Next() (string, Cell, bool) {
	if s.pos >= len(s.entries) {
		return "", Cell{}, false
	}
	e := s.entries[s.pos]
	s.pos++
	return e.key, e.cell, true
}

func (s *memSnapshot) Remaining() int { return len(s.entries) - s.pos }

// Snapshot returns a point-in-time iterator over the mem engine's
// resident cells: the cells are copied out under the sorted key index,
// so later mutations do not leak into the stream.
func (e *MemEngine) Snapshot() SnapshotIter {
	keys := e.keys.sortedKeys()
	entries := make([]runEntry, 0, len(keys))
	for _, k := range keys {
		if c, ok := e.cells[k]; ok {
			entries = append(entries, runEntry{key: k, cell: c})
		}
	}
	return &memSnapshot{entries: entries}
}

// SnapshotRanges returns a point-in-time iterator restricted to the
// given token ranges: only resident cells whose key tokens fall inside
// one of the arcs appear, still in sorted key order. An empty range set
// yields an empty snapshot.
func (e *MemEngine) SnapshotRanges(ranges []ring.Range) SnapshotIter {
	keys, toks := e.keys.sortedView()
	var entries []runEntry
	for i, k := range keys {
		if !ring.RangesContain(ranges, toks[i]) {
			continue
		}
		if c, ok := e.cells[k]; ok {
			entries = append(entries, runEntry{key: k, cell: c})
		}
	}
	return &memSnapshot{entries: entries}
}

// lsmSnapshot merge-iterates a captured set of immutable sorted runs,
// oldest first in the slice, newest-run-wins per key.
type lsmSnapshot struct {
	runs      []run // immutable; compaction replaces the engine's slice, not the runs
	pos       []int
	remaining int
}

func (s *lsmSnapshot) Next() (string, Cell, bool) {
	// Find the smallest resident key across runs; among equal keys the
	// newest run (highest index) wins and the older entries are skipped.
	best := -1
	for i := range s.runs {
		if s.pos[i] >= len(s.runs[i].entries) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		bk, ik := s.runs[best].entries[s.pos[best]].key, s.runs[i].entries[s.pos[i]].key
		if ik <= bk {
			// i > best in slice order means i is the newer run; on key
			// ties the newer run supersedes.
			best = i
		}
	}
	if best < 0 {
		return "", Cell{}, false
	}
	ent := s.runs[best].entries[s.pos[best]]
	// Advance every run past this key (superseded duplicates drop out).
	for i := range s.runs {
		for s.pos[i] < len(s.runs[i].entries) && s.runs[i].entries[s.pos[i]].key == ent.key {
			s.pos[i]++
			s.remaining--
		}
	}
	return ent.key, ent.cell, true
}

func (s *lsmSnapshot) Remaining() int { return s.remaining }

// Snapshot returns a point-in-time iterator over the LSM engine's
// resident cells. The memtable is sealed into a run first (Cassandra
// flushes before streaming), so the snapshot is exactly the immutable
// sorted runs at this instant: later writes land in a fresh memtable and
// later flushes append new runs, neither of which the captured run set
// references.
func (e *LSMEngine) Snapshot() SnapshotIter {
	e.Flush()
	runs := append([]run(nil), e.runs...)
	s := &lsmSnapshot{runs: runs, pos: make([]int, len(runs))}
	for i := range runs {
		s.remaining += len(runs[i].entries)
	}
	return s
}

// SnapshotRanges returns a point-in-time iterator restricted to the
// given token ranges. The memtable is sealed first exactly like
// Snapshot (so range- and full snapshots have identical flush side
// effects); matching cells are then materialized through the key index
// and Peek, which reads the same newest-run-wins view the merge
// iterator would. An empty range set yields an empty snapshot (but
// still flushes).
func (e *LSMEngine) SnapshotRanges(ranges []ring.Range) SnapshotIter {
	e.Flush()
	keys, toks := e.keys.sortedView()
	var entries []runEntry
	for i, k := range keys {
		if !ring.RangesContain(ranges, toks[i]) {
			continue
		}
		if c, ok := e.Peek(k); ok {
			entries = append(entries, runEntry{key: k, cell: c})
		}
	}
	return &memSnapshot{entries: entries}
}

// EncodeCell appends the framed wire encoding of one (key, cell) pair to
// buf and returns the extended slice. The framing is the WAL record
// format (length + type + payload + CRC32), so a snapshot stream is
// torn- and corruption-detectable exactly like a log replay.
func EncodeCell(buf []byte, key string, c Cell) []byte {
	return appendWALRecord(buf, key, c)
}

// DecodeCell decodes one framed cell starting at off, returning the key,
// cell and total encoded size. Errors mirror WAL replay: a torn record
// means the stream was cut short, a corrupt one means checksum damage.
func DecodeCell(data []byte, off int) (key string, c Cell, n int, err error) {
	return decodeWALRecord(data, off)
}

// ApplyEncoded decodes every framed cell in data and applies it to the
// engine through the normal last-write-wins path. It returns how many
// cells were decoded and how many were accepted as the new resident
// version; err is non-nil when the buffer ends in a torn or corrupt
// record (the consistent prefix before it is still applied).
func ApplyEncoded(e Engine, data []byte) (total, applied int, err error) {
	off := 0
	for off < len(data) {
		key, cell, n, derr := DecodeCell(data, off)
		if derr != nil {
			return total, applied, derr
		}
		total++
		if e.Apply(key, cell) {
			applied++
		}
		off += n
	}
	return total, applied, nil
}
