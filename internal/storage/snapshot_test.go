package storage

import (
	"fmt"
	"testing"
	"time"
)

func fillEngine(e Engine, n int, seqBase uint64) {
	for i := 0; i < n; i++ {
		e.Apply(fmt.Sprintf("snap%05d", i), Cell{
			Version: Version{Timestamp: time.Duration(i + 1), Seq: seqBase + uint64(i)},
			Value:   []byte(fmt.Sprintf("val-%d", i)),
		})
	}
}

// TestSnapshotSortedAndComplete pins that both engines' snapshots visit
// every resident cell exactly once in sorted key order — including
// tombstones, and for the LSM engine across memtable + multiple runs
// with superseded versions.
func TestSnapshotSortedAndComplete(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Engine
	}{
		{"mem", func() Engine { return NewMemEngine(0) }},
		{"lsm", func() Engine { return NewLSMEngine(Options{FlushLimit: 512, SyncBytes: 0, MaxRuns: 16}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.mk()
			fillEngine(e, 100, 1)
			// Overwrite some keys with newer versions and delete a few so
			// runs hold superseded entries and tombstones.
			for i := 0; i < 100; i += 7 {
				e.Apply(fmt.Sprintf("snap%05d", i), Cell{
					Version: Version{Timestamp: time.Duration(1000 + i), Seq: 1000 + uint64(i)},
					Value:   []byte("newer"),
				})
			}
			e.Delete("snap00004", Version{Timestamp: 5000, Seq: 5000})

			it := e.Snapshot()
			var prev string
			count := 0
			for {
				k, c, ok := it.Next()
				if !ok {
					break
				}
				if count > 0 && k <= prev {
					t.Fatalf("snapshot out of order: %q after %q", k, prev)
				}
				want, wok := e.Peek(k)
				if !wok || want.Version != c.Version || want.Tombstone != c.Tombstone {
					t.Fatalf("snapshot cell %q = %+v, resident %+v (ok=%v)", k, c, want, wok)
				}
				prev = k
				count++
			}
			if count != e.Len() {
				t.Fatalf("snapshot visited %d cells, engine holds %d", count, e.Len())
			}
		})
	}
}

// TestSnapshotIsolation pins the point-in-time property: mutations made
// after Snapshot() do not appear in the iteration.
func TestSnapshotIsolation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Engine
	}{
		{"mem", func() Engine { return NewMemEngine(0) }},
		{"lsm", func() Engine { return NewLSMEngine(Options{FlushLimit: 0, SyncBytes: 0}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.mk()
			fillEngine(e, 50, 1)
			it := e.Snapshot()
			// Mutate after the snapshot: a new key and a newer version.
			e.Apply("zzz-late", Cell{Version: Version{Timestamp: 9999, Seq: 9999}, Value: []byte("late")})
			e.Apply("snap00000", Cell{Version: Version{Timestamp: 9999, Seq: 9998}, Value: []byte("late")})
			for {
				k, c, ok := it.Next()
				if !ok {
					break
				}
				if k == "zzz-late" {
					t.Fatal("snapshot leaked a post-snapshot key")
				}
				if k == "snap00000" && c.Version.Timestamp == 9999 {
					t.Fatal("snapshot leaked a post-snapshot version")
				}
			}
		})
	}
}

// TestSnapshotStreamRoundTrip pins the full pipeline: iterate a source
// engine, serialize into framed chunks, apply on a receiving engine of
// the other kind — the receiver converges to identical resident state.
func TestSnapshotStreamRoundTrip(t *testing.T) {
	src := NewLSMEngine(Options{FlushLimit: 1024, SyncBytes: 0, MaxRuns: 4})
	fillEngine(src, 200, 1)
	src.Delete("snap00013", Version{Timestamp: 7777, Seq: 7777})

	dst := NewMemEngine(0)
	// Seed the receiver with one newer cell: streaming must not clobber it
	// (last-write-wins applies to streamed cells too).
	newer := Cell{Version: Version{Timestamp: 1 << 40, Seq: 1 << 40}, Value: []byte("kept")}
	dst.Apply("snap00001", newer)

	it := src.Snapshot()
	var chunk []byte
	total, applied := 0, 0
	flush := func() {
		tt, aa, err := ApplyEncoded(dst, chunk)
		if err != nil {
			t.Fatalf("apply chunk: %v", err)
		}
		total += tt
		applied += aa
		chunk = chunk[:0]
	}
	for {
		k, c, ok := it.Next()
		if !ok {
			break
		}
		chunk = EncodeCell(chunk, k, c)
		if len(chunk) >= 4096 {
			flush()
		}
	}
	flush()

	if total != src.Len() {
		t.Fatalf("streamed %d cells, source holds %d", total, src.Len())
	}
	if applied != total-1 {
		t.Fatalf("applied %d of %d (exactly the pre-seeded newer cell should be rejected)", applied, total)
	}
	if got, _ := dst.Peek("snap00001"); got.Version != newer.Version {
		t.Fatal("stream clobbered a newer resident cell")
	}
	src.Range(func(k string, c Cell) bool {
		if k == "snap00001" {
			return true
		}
		got, ok := dst.Peek(k)
		if !ok || got.Version != c.Version || got.Tombstone != c.Tombstone {
			t.Fatalf("receiver diverges at %q: %+v vs %+v (ok=%v)", k, got, c, ok)
		}
		return true
	})
}

// TestApplyEncodedTornChunk pins that a truncated chunk applies its
// consistent prefix and reports the tear.
func TestApplyEncodedTornChunk(t *testing.T) {
	var buf []byte
	buf = EncodeCell(buf, "a", Cell{Version: Version{Timestamp: 1, Seq: 1}, Value: []byte("x")})
	whole := len(buf)
	buf = EncodeCell(buf, "b", Cell{Version: Version{Timestamp: 2, Seq: 2}, Value: []byte("y")})

	dst := NewMemEngine(0)
	total, applied, err := ApplyEncoded(dst, buf[:whole+3])
	if err == nil {
		t.Fatal("expected torn-record error")
	}
	if total != 1 || applied != 1 {
		t.Fatalf("prefix: total=%d applied=%d, want 1/1", total, applied)
	}
	if _, ok := dst.Peek("a"); !ok {
		t.Fatal("consistent prefix not applied")
	}
}
