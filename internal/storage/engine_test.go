package storage

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func v(ts int64, seq uint64) Version {
	return Version{Timestamp: time.Duration(ts), Seq: seq}
}

func TestVersionOrdering(t *testing.T) {
	cases := []struct {
		a, b  Version
		after bool
	}{
		{v(2, 1), v(1, 9), true},
		{v(1, 9), v(2, 1), false},
		{v(1, 2), v(1, 1), true},
		{v(1, 1), v(1, 1), false},
	}
	for _, c := range cases {
		if got := c.a.After(c.b); got != c.after {
			t.Errorf("%v.After(%v) = %v", c.a, c.b, got)
		}
	}
	if v(1, 1).Compare(v(1, 1)) != 0 || v(2, 0).Compare(v(1, 0)) != 1 || v(1, 0).Compare(v(2, 0)) != -1 {
		t.Error("Compare wrong")
	}
	if !(Version{}).Zero() || v(0, 1).Zero() {
		t.Error("Zero wrong")
	}
}

func TestApplyLastWriteWins(t *testing.T) {
	e := NewMemEngine(0)
	if !e.Apply("k", Cell{Version: v(10, 1), Value: []byte("a")}) {
		t.Fatal("first apply rejected")
	}
	if e.Apply("k", Cell{Version: v(5, 2), Value: []byte("old")}) {
		t.Fatal("older write applied")
	}
	got, ok := e.Get("k")
	if !ok || string(got.Value) != "a" {
		t.Fatalf("resident cell %v", got)
	}
	if !e.Apply("k", Cell{Version: v(20, 3), Value: []byte("b")}) {
		t.Fatal("newer write rejected")
	}
	got, _ = e.Get("k")
	if string(got.Value) != "b" {
		t.Fatal("newer value not resident")
	}
	if rejected := e.Stats().Rejected; rejected != 1 {
		t.Errorf("rejected = %d", rejected)
	}
}

// TestApplyOrderIndependenceProperty: applying any permutation of a write
// set converges to the same resident version — the property hinted
// handoff and anti-entropy rely on.
func TestApplyOrderIndependenceProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(func(seed uint64, n uint8) bool {
		count := int(n%8) + 2
		cells := make([]Cell, count)
		for i := range cells {
			cells[i] = Cell{
				Version: v(int64(i/2), uint64(i)), // include timestamp ties
				Value:   []byte(fmt.Sprintf("v%d", i)),
			}
		}
		apply := func(perm []int) Version {
			e := NewMemEngine(0)
			for _, idx := range perm {
				e.Apply("k", cells[idx])
			}
			c, _ := e.Get("k")
			return c.Version
		}
		base := make([]int, count)
		for i := range base {
			base[i] = i
		}
		want := apply(base)
		rng := rand.New(rand.NewPCG(seed, 1))
		for trial := 0; trial < 5; trial++ {
			perm := append([]int(nil), base...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			if apply(perm) != want {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestTombstone(t *testing.T) {
	e := NewMemEngine(0)
	e.Apply("k", Cell{Version: v(1, 1), Value: []byte("x")})
	if !e.Delete("k", v(2, 2)) {
		t.Fatal("delete rejected")
	}
	got, ok := e.Get("k")
	if !ok || !got.Tombstone {
		t.Fatal("tombstone not resident")
	}
	// A write newer than the tombstone resurrects the key.
	e.Apply("k", Cell{Version: v(3, 3), Value: []byte("y")})
	got, _ = e.Get("k")
	if got.Tombstone || string(got.Value) != "y" {
		t.Fatal("resurrection failed")
	}
}

func TestBytesAccounting(t *testing.T) {
	e := NewMemEngine(0)
	e.Apply("k", Cell{Version: v(1, 1), Value: make([]byte, 100)})
	if e.Bytes() != 124 {
		t.Errorf("bytes = %d", e.Bytes())
	}
	e.Apply("k", Cell{Version: v(2, 2), Value: make([]byte, 10)})
	if e.Bytes() != 34 {
		t.Errorf("bytes after overwrite = %d", e.Bytes())
	}
	e.Apply("j", Cell{Version: v(1, 3), Value: make([]byte, 6)})
	if e.Bytes() != 64 {
		t.Errorf("bytes after second key = %d", e.Bytes())
	}
}

func TestFlushAccounting(t *testing.T) {
	e := NewMemEngine(100)
	for i := 0; i < 10; i++ {
		e.Apply(fmt.Sprintf("k%d", i), Cell{Version: v(1, uint64(i+1)), Value: make([]byte, 40)})
	}
	st := e.Stats()
	if st.Flushes == 0 {
		t.Error("no flushes despite exceeding the limit")
	}
	if st.FlushedBytes == 0 {
		t.Error("flushed bytes not accounted")
	}
}

func TestKeyListInsertionOrder(t *testing.T) {
	e := NewMemEngine(0)
	keys := []string{"c", "a", "b"}
	for i, k := range keys {
		e.Apply(k, Cell{Version: v(1, uint64(i+1))})
	}
	e.Apply("a", Cell{Version: v(2, 4)}) // re-apply must not duplicate
	if e.KeyCount() != 3 {
		t.Fatalf("key count = %d", e.KeyCount())
	}
	for i, k := range keys {
		if e.KeyAt(i) != k {
			t.Errorf("KeyAt(%d) = %s, want %s", i, e.KeyAt(i), k)
		}
	}
	sorted := e.Keys()
	if sorted[0] != "a" || sorted[1] != "b" || sorted[2] != "c" {
		t.Errorf("Keys() = %v", sorted)
	}
}

// TestKeysIncrementalSort pins the incremental sorted-view maintenance:
// interleaved inserts and Keys() calls must always see the full sorted
// key set, exercising the initial-sort, merge and cached (no new keys)
// paths.
func TestKeysIncrementalSort(t *testing.T) {
	e := NewMemEngine(0)
	var want []string
	seq := uint64(0)
	insert := func(keys ...string) {
		for _, k := range keys {
			seq++
			e.Apply(k, Cell{Version: v(1, seq)})
			want = append(want, k)
		}
	}
	check := func() {
		t.Helper()
		sorted := append([]string(nil), want...)
		sort.Strings(sorted)
		got := e.Keys()
		if len(got) != len(sorted) {
			t.Fatalf("Keys() len = %d, want %d", len(got), len(sorted))
		}
		for i := range got {
			if got[i] != sorted[i] {
				t.Fatalf("Keys()[%d] = %s, want %s (full: %v)", i, got[i], sorted[i], got)
			}
		}
	}
	insert("m", "c", "x")
	check()
	check() // cached path: no new keys
	insert("a", "q")
	e.Apply("c", Cell{Version: v(2, 99)}) // overwrite: no new key
	check()
	insert("b")
	check()
}

func TestRangeEarlyStop(t *testing.T) {
	e := NewMemEngine(0)
	for i := 0; i < 10; i++ {
		e.Apply(fmt.Sprintf("k%d", i), Cell{Version: v(1, uint64(i+1))})
	}
	n := 0
	e.Range(func(string, Cell) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("range visited %d", n)
	}
}

func TestPeekDoesNotCountAsRead(t *testing.T) {
	e := NewMemEngine(0)
	e.Apply("k", Cell{Version: v(1, 1)})
	e.Peek("k")
	if reads := e.Stats().Reads; reads != 0 {
		t.Errorf("peek counted as read: %d", reads)
	}
	e.Get("k")
	if reads := e.Stats().Reads; reads != 1 {
		t.Errorf("get not counted: %d", reads)
	}
}
