package autoscale

import (
	"fmt"
	"time"

	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/provision"
)

// Controller is the autoscale control loop. It is not safe for
// concurrent use; the engine serializes access (event loop in
// simulation, the engine lock live), exactly like core.Controller.
type Controller struct {
	store   Store
	sampler Sampler
	clock   Clock
	cfg     Config

	log        []Decision
	changed    bool // an enacted change exists (gates the cooldown)
	lastChange time.Duration
	upStreak   int
	downStreak int
	// joinedAt anchors each member's billed-unit clock: the Join
	// decision time, or zero for nodes that predate the controller
	// (leased at cluster birth).
	joinedAt map[netsim.NodeID]time.Duration

	started, stopped bool
}

// New wires a controller over a store, a workload sampler and a clock.
func New(store Store, sampler Sampler, clock Clock, cfg Config) *Controller {
	return &Controller{
		store:    store,
		sampler:  sampler,
		clock:    clock,
		cfg:      cfg.withDefaults(),
		joinedAt: make(map[netsim.NodeID]time.Duration),
	}
}

// Start begins the control loop: an immediate evaluation, then one per
// Interval.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	c.loop()
}

// Stop halts rescheduling after the next tick fires.
func (c *Controller) Stop() { c.stopped = true }

// Log returns the decision history.
func (c *Controller) Log() []Decision { return c.log }

// Config returns the normalized configuration in force.
func (c *Controller) Config() Config { return c.cfg }

func (c *Controller) loop() {
	if c.stopped {
		return
	}
	c.Step()
	c.clock.Schedule(c.cfg.Interval, c.loop)
}

// floor is the smallest legal cluster size.
func (c *Controller) floor() int {
	return c.cfg.Constraints.RF + c.cfg.Constraints.FailureBudget
}

// WorkloadFrom distills a monitor snapshot into the provisioning
// optimizer's workload profile: aggregate offered load, read fraction,
// and the read-weighted per-key write rate the staleness model wants
// (the write pressure against the key a read actually observes, not the
// global write rate). Reads served from the coordinators' hot-key cache
// never reach a replica, so the effective read load the cluster must be
// sized for is the post-cache rate — provisioning for the raw rate
// would buy capacity the cache already absorbed.
func WorkloadFrom(snap monitor.Snapshot, baseLatency time.Duration) provision.Workload {
	reads := snap.ReadRate * (1 - snap.CacheHitShare)
	ops := reads + snap.WriteRate
	w := provision.Workload{OpsPerSecond: ops, BaseLatency: baseLatency}
	if ops > 0 {
		w.ReadFraction = reads / ops
	}
	var perKey float64
	for _, k := range snap.TopKeys {
		perKey += k.ReadShare * k.WriteRate
	}
	if snap.TailKeys > 0 {
		perKey += snap.TailReadShr * (snap.TailWriteRte / snap.TailKeys)
	}
	w.WriteRate = perKey
	return w
}

// Step runs one control period — sample, optimize, enact — and returns
// (and logs) the decision. The scheduled loop calls it once per
// Interval; benches and tests call it directly.
func (c *Controller) Step() Decision {
	now := c.clock.Now()
	snap := c.sampler.Snapshot()
	members := c.store.Members()
	d := Decision{At: now, Members: len(members), Node: -1}
	d.ObservedStale = snap.ObservedStaleRate
	w := WorkloadFrom(snap, c.cfg.BaseLatency)
	d.Workload = w

	if w.OpsPerSecond <= 0 {
		// No evidence: hold, and let stale streaks die with the lull.
		d.Target = len(members)
		d.Reason = "no load observed"
		c.upStreak, c.downStreak = 0, 0
		c.append(d)
		return d
	}

	plan, _ := provision.Optimize([]provision.NodeType{c.cfg.NodeType}, w, c.cfg.Constraints, c.cfg.MaxNodes)
	d.Plan = plan
	cur := len(members)
	target := cur
	bestEffort := false
	if plan.Feasible {
		target = plan.Nodes
	} else if provision.Evaluate(c.cfg.NodeType, c.cfg.MaxNodes, w, c.cfg.Constraints).Verdict.ScalingHelps() {
		// No size within the ceiling satisfies everything, but at the
		// ceiling the binding constraint is one more capacity would
		// still ease (throughput, utilization, staleness): aim for the
		// ceiling best-effort. Verdicts scaling cannot fix (level
		// unreachable, degenerate inputs) hold instead.
		target = c.cfg.MaxNodes
		bestEffort = true
	}
	// Measured-staleness feedback: the model can call the current size
	// compliant while the windowed observed stale rate says otherwise —
	// propagation is slower in the flesh than in the queueing model.
	// Sustained violation is scale-up pressure like any other.
	why := plan.Reason
	if d.ObservedStale > c.cfg.Constraints.MaxStaleRate && target <= cur {
		target = cur + 1
		why = fmt.Sprintf("measured stale %.1f%% above tolerated %.1f%%",
			100*d.ObservedStale, 100*c.cfg.Constraints.MaxStaleRate)
	}
	rawTarget := target
	if target < c.floor() {
		target = c.floor()
	}
	if target > c.cfg.MaxNodes {
		target = c.cfg.MaxNodes
	}
	d.Target = target
	switch {
	case target > cur:
		c.upStreak, c.downStreak = c.upStreak+1, 0
	case target < cur:
		c.upStreak, c.downStreak = 0, c.downStreak+1
	default:
		c.upStreak, c.downStreak = 0, 0
	}

	switch {
	case target == cur:
		switch {
		case rawTarget > target || (bestEffort && cur == c.cfg.MaxNodes):
			// The pressure points past the ceiling; nothing to lease.
			d.Action = ActionBlockedCeiling
			d.Reason = fmt.Sprintf("at MaxNodes %d: %s", c.cfg.MaxNodes, why)
		case !plan.Feasible:
			d.Reason = "holding: " + plan.Reason
		case cur == c.floor() && provision.UnconstrainedSize(c.cfg.NodeType, w, c.cfg.Constraints) < cur:
			// The load would fit fewer nodes; only the durability floor
			// holds the cluster up.
			d.Action = ActionBlockedFloor
			d.Reason = fmt.Sprintf("load fits fewer nodes; floor RF+failures = %d holds the cluster up", c.floor())
		default:
			d.Reason = "at recommended size"
		}
	case !c.store.MembershipSettled():
		d.Action = ActionDeferSettling
		d.Reason = "previous membership change still streaming or warming"
	case !c.store.MembershipConverged():
		// Gossip-disseminated membership: the last change is enacted but
		// some views have not caught up; changing the ring again now
		// would stack staleness on staleness.
		d.Action = ActionDeferSettling
		d.Reason = "membership views still converging"
	case c.changed && now-c.lastChange < c.cfg.Cooldown:
		d.Action = ActionDeferCooldown
		d.Reason = fmt.Sprintf("cooldown: %v since last change < %v", now-c.lastChange, c.cfg.Cooldown)
	case target > cur:
		c.stepUp(&d, why)
	default:
		c.stepDown(&d, members)
	}
	c.append(d)
	return d
}

// stepUp enacts (or defers) one scale-up step; why is the binding
// pressure (the optimizer's reason, or the measured-staleness
// violation).
func (c *Controller) stepUp(d *Decision, why string) {
	if c.upStreak < c.cfg.UpStreak {
		d.Action = ActionDeferHysteresis
		d.Reason = fmt.Sprintf("scale-up pressure %d/%d samples", c.upStreak, c.cfg.UpStreak)
		return
	}
	spare := c.pickSpare()
	if spare < 0 {
		d.Action = ActionBlockedNoSpare
		d.Reason = "no joinable topology node"
		return
	}
	if err := c.store.TryJoin(spare); err != nil {
		d.Action = ActionBlockedNoSpare
		d.Reason = "join rejected: " + err.Error()
		return
	}
	d.Action = ActionJoin
	d.Node = spare
	d.Reason = fmt.Sprintf("scale up toward %d: %s", d.Target, why)
	c.noteChange(d.At)
	c.joinedAt[spare] = d.At
	c.upStreak = 0
}

// stepDown enacts (or defers) one scale-down step.
func (c *Controller) stepDown(d *Decision, members []netsim.NodeID) {
	if d.Members <= c.floor() {
		d.Action = ActionBlockedFloor
		d.Reason = fmt.Sprintf("at floor RF+failures = %d", c.floor())
		return
	}
	if c.downStreak < c.cfg.DownStreak {
		d.Action = ActionDeferHysteresis
		d.Reason = fmt.Sprintf("scale-down pressure %d/%d samples", c.downStreak, c.cfg.DownStreak)
		return
	}
	// The smaller cluster must fit the observed load inflated by the
	// headroom margin — the scale-down leg of the hysteresis band.
	infl := d.Workload
	infl.OpsPerSecond *= 1 + c.cfg.Headroom
	if p := provision.Evaluate(c.cfg.NodeType, d.Members-1, infl, c.cfg.Constraints); !p.Feasible {
		d.Action = ActionDeferHysteresis
		d.Reason = fmt.Sprintf("headroom: %d nodes under %.0f%% margin: %s",
			d.Members-1, 100*c.cfg.Headroom, p.Reason)
		return
	}
	victim, wait := c.pickVictim(d.At, members)
	if victim < 0 {
		d.Action = ActionBlockedNoSpare
		d.Reason = "no plainly live member to decommission"
		return
	}
	if wait > 0 {
		d.Action = ActionDeferBoundary
		d.Node = victim
		d.Reason = fmt.Sprintf("node %d's billed unit has %v left; decommissioning early saves nothing", victim, wait)
		return
	}
	if err := c.store.TryDecommission(victim); err != nil {
		d.Action = ActionBlockedNoSpare
		d.Reason = "decommission rejected: " + err.Error()
		return
	}
	d.Action = ActionDecommission
	d.Node = victim
	d.Reason = fmt.Sprintf("scale down toward %d: %d nodes suffice", d.Target, d.Target)
	c.noteChange(d.At)
	delete(c.joinedAt, victim)
	c.downStreak = 0
}

func (c *Controller) noteChange(at time.Duration) {
	c.changed = true
	c.lastChange = at
}

// pickSpare returns the lowest-id candidate that can join, or -1.
func (c *Controller) pickSpare() netsim.NodeID {
	for _, id := range c.cfg.Candidates {
		switch c.store.State(id) {
		case kv.StateNotMember, kv.StateDecommissioned:
			return id
		}
	}
	return -1
}

// pickVictim chooses the scale-down victim among plainly live members:
// the one closest to its billed-unit boundary (its current unit is paid
// for either way, so the one with the least remaining value goes
// first); ties break toward the highest id. It returns the victim and
// how long scale-down should wait for the boundary (0 = act now).
func (c *Controller) pickVictim(now time.Duration, members []netsim.NodeID) (netsim.NodeID, time.Duration) {
	best := netsim.NodeID(-1)
	var bestWait time.Duration
	for _, id := range members {
		if c.store.State(id) != kv.StateLive {
			continue
		}
		wait := c.untilBoundary(id, now)
		if best < 0 || wait < bestWait || (wait == bestWait && id > best) {
			best, bestWait = id, wait
		}
	}
	return best, bestWait
}

// untilBoundary reports how long until node id completes the billed
// unit it is currently inside, rounded down to 0 when the boundary
// falls within one control period (the controller cannot act more
// precisely than its own cadence). A granularity at or below the
// control period is effectively continuous billing: always 0.
func (c *Controller) untilBoundary(id netsim.NodeID, now time.Duration) time.Duration {
	g := c.cfg.Pricing.BillingGranularity
	if g <= 0 {
		g = time.Hour
	}
	if g <= c.cfg.Interval {
		return 0
	}
	elapsed := now - c.joinedAt[id] // zero anchor for pre-controller members
	// A node sitting exactly on a boundary has completed its unit:
	// acting right now costs nothing extra, so the remainder is 0, not g.
	rem := (g - elapsed%g) % g
	if rem <= c.cfg.Interval {
		return 0
	}
	return rem
}

func (c *Controller) append(d Decision) {
	c.log = append(c.log, d)
	if lim := c.cfg.LogLimit; lim > 0 && len(c.log) > 2*lim {
		// Fresh backing array: slices handed out by Log() before the
		// trim must not be rewritten under their holders.
		c.log = append([]Decision(nil), c.log[len(c.log)-lim:]...)
	}
}
