package autoscale

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/provision"
)

// fakeClock is a manual clock; the controller's scheduled loop is not
// started in unit tests — Step is driven directly.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration                  { return c.now }
func (c *fakeClock) Schedule(d time.Duration, fn func()) {}
func (c *fakeClock) advance(d time.Duration)             { c.now += d }

// fakeStore applies joins/decommissions instantly and records them.
type fakeStore struct {
	members  []netsim.NodeID
	topoN    int
	settled  bool
	joins    []netsim.NodeID
	decoms   []netsim.NodeID
	rejectOp bool
	// converged overrides MembershipConverged; nil means converged
	// (atomic-membership stores always are).
	converged *bool
}

func newFakeStore(members, topoN int) *fakeStore {
	s := &fakeStore{topoN: topoN, settled: true}
	for i := 0; i < members; i++ {
		s.members = append(s.members, netsim.NodeID(i))
	}
	return s
}

func (s *fakeStore) Members() []netsim.NodeID { return append([]netsim.NodeID(nil), s.members...) }

func (s *fakeStore) State(id netsim.NodeID) kv.NodeState {
	for _, m := range s.members {
		if m == id {
			return kv.StateLive
		}
	}
	if int(id) < s.topoN {
		return kv.StateNotMember
	}
	return kv.StateNotMember
}

func (s *fakeStore) MembershipSettled() bool { return s.settled }

func (s *fakeStore) MembershipConverged() bool { return s.converged == nil || *s.converged }

func (s *fakeStore) TryJoin(id netsim.NodeID) error {
	if s.rejectOp {
		return fmt.Errorf("rejected")
	}
	s.members = append(s.members, id)
	s.joins = append(s.joins, id)
	return nil
}

func (s *fakeStore) TryDecommission(id netsim.NodeID) error {
	if s.rejectOp {
		return fmt.Errorf("rejected")
	}
	for i, m := range s.members {
		if m == id {
			s.members = append(s.members[:i], s.members[i+1:]...)
			s.decoms = append(s.decoms, id)
			return nil
		}
	}
	return fmt.Errorf("not a member")
}

// scriptSampler replays a scripted sequence of offered loads (reads/s);
// the last entry repeats.
type scriptSampler struct {
	loads []float64
	i     int
	stale float64
}

func (s *scriptSampler) Snapshot() monitor.Snapshot {
	load := s.loads[len(s.loads)-1]
	if s.i < len(s.loads) {
		load = s.loads[s.i]
		s.i++
	}
	return monitor.Snapshot{ReadRate: load, ObservedStaleRate: s.stale}
}

// testNodeType: one slot, 1 ms reads — capacity ≈ 850 ops/s per node at
// the 85% utilization cap, so recommended size = ceil(load/850).
func testNodeType() provision.NodeType {
	return provision.NodeType{
		Name:             "t.unit",
		HourlyCost:       0.10,
		Concurrency:      1,
		ReadServiceMean:  time.Millisecond,
		WriteServiceMean: time.Millisecond,
	}
}

func testConfig(candidates int) Config {
	ids := make([]netsim.NodeID, candidates)
	for i := range ids {
		ids[i] = netsim.NodeID(i)
	}
	return Config{
		NodeType: testNodeType(),
		Constraints: provision.Constraints{
			RF: 3, ReadLevel: 1, WriteLevel: 1,
			MaxStaleRate: 1, FailureBudget: 1,
		},
		Pricing:     cost.EC2East2013().PerSecond(), // granularity ≤ interval: no boundary deferrals
		Candidates:  ids,
		Interval:    time.Second,
		Cooldown:    3 * time.Second,
		UpStreak:    2,
		DownStreak:  4,
		Headroom:    0.15,
		BaseLatency: time.Millisecond,
	}
}

// drive runs n control periods, advancing the clock by the interval.
func drive(c *Controller, clock *fakeClock, n int) {
	for i := 0; i < n; i++ {
		c.Step()
		clock.advance(c.cfg.Interval)
	}
}

// TestScaleUpOnSustainedLoad: a load the current size cannot carry
// triggers a join — after the up-streak hysteresis, not instantly.
func TestScaleUpOnSustainedLoad(t *testing.T) {
	store := newFakeStore(4, 10)
	clock := &fakeClock{}
	// 6000 ops/s needs ceil(6000*0.001/0.85) = 8 nodes.
	ctl := New(store, &scriptSampler{loads: []float64{6000}}, clock, testConfig(10))

	d := ctl.Step()
	if d.Action != ActionDeferHysteresis {
		t.Fatalf("first sample acted immediately: %v", d)
	}
	clock.advance(time.Second)
	d = ctl.Step()
	if d.Action != ActionJoin || d.Node != 4 {
		t.Fatalf("second sample: %v, want join of node 4", d)
	}
	if d.Target != 8 {
		t.Errorf("target = %d, want 8", d.Target)
	}
	if len(store.joins) != 1 {
		t.Errorf("joins = %v", store.joins)
	}
}

// TestHysteresisPreventsFlapping: a workload hovering exactly at the
// size threshold — recommendation alternating between the current size
// and one less — must never enact a change.
func TestHysteresisPreventsFlapping(t *testing.T) {
	store := newFakeStore(6, 10)
	clock := &fakeClock{}
	// 5 nodes carry 4250 ops/s; alternate between "6 needed" (4800) and
	// "5 needed" (4000): target flips 6,5,6,5,... and streaks never
	// accumulate.
	loads := make([]float64, 0, 40)
	for i := 0; i < 20; i++ {
		loads = append(loads, 4800, 4000)
	}
	ctl := New(store, &scriptSampler{loads: loads}, clock, testConfig(10))
	drive(ctl, clock, 40)
	for _, d := range ctl.Log() {
		if d.Action.Enacted() {
			t.Fatalf("threshold-hovering workload enacted a change: %v", d)
		}
	}
	if len(store.joins)+len(store.decoms) != 0 {
		t.Fatalf("membership changed: joins=%v decoms=%v", store.joins, store.decoms)
	}
}

// TestCooldownHonored: with a persistently rising load, enacted joins
// are spaced by at least the cooldown.
func TestCooldownHonored(t *testing.T) {
	store := newFakeStore(4, 16)
	clock := &fakeClock{}
	cfg := testConfig(16)
	ctl := New(store, &scriptSampler{loads: []float64{12000}}, clock, cfg) // wants 15 nodes
	drive(ctl, clock, 30)

	var enacted []time.Duration
	for _, d := range ctl.Log() {
		if d.Action.Enacted() {
			enacted = append(enacted, d.At)
		}
	}
	if len(enacted) < 2 {
		t.Fatalf("only %d changes enacted in 30 periods", len(enacted))
	}
	for i := 1; i < len(enacted); i++ {
		if gap := enacted[i] - enacted[i-1]; gap < cfg.Cooldown {
			t.Fatalf("changes %v apart, cooldown is %v", gap, cfg.Cooldown)
		}
	}
}

// TestFloorRespected: a near-idle workload never shrinks the cluster
// below RF+FailureBudget, and the decision log says why.
func TestFloorRespected(t *testing.T) {
	store := newFakeStore(6, 10)
	clock := &fakeClock{}
	ctl := New(store, &scriptSampler{loads: []float64{50}}, clock, testConfig(10)) // wants 1 node
	drive(ctl, clock, 40)

	if got, floor := len(store.members), 4; got != floor {
		t.Fatalf("members = %d, want floor %d", got, floor)
	}
	sawFloor := false
	for _, d := range ctl.Log() {
		if d.Target < 4 {
			t.Fatalf("target %d below floor: %v", d.Target, d)
		}
		if d.Action == ActionBlockedFloor {
			sawFloor = true
		}
	}
	if !sawFloor {
		t.Error("no blocked-floor decision logged at the floor")
	}
}

// TestSettlingPacesChanges: nothing is enacted while the store reports
// an unsettled membership (change streaming or a warming window open).
func TestSettlingPacesChanges(t *testing.T) {
	store := newFakeStore(4, 10)
	store.settled = false
	clock := &fakeClock{}
	ctl := New(store, &scriptSampler{loads: []float64{6000}}, clock, testConfig(10))
	drive(ctl, clock, 10)
	for _, d := range ctl.Log() {
		if d.Action.Enacted() {
			t.Fatalf("enacted while unsettled: %v", d)
		}
	}
	store.settled = true
	drive(ctl, clock, 2)
	if len(store.joins) == 0 {
		t.Fatal("no join once settled")
	}
}

// TestConvergencePacesChanges: with gossip-disseminated membership, a
// settled but not yet view-converged cluster defers changes exactly
// like an unsettled one, and acts once views agree.
func TestConvergencePacesChanges(t *testing.T) {
	store := newFakeStore(4, 10)
	converged := false
	store.converged = &converged
	clock := &fakeClock{}
	ctl := New(store, &scriptSampler{loads: []float64{6000}}, clock, testConfig(10))
	drive(ctl, clock, 10)
	for _, d := range ctl.Log() {
		if d.Action.Enacted() {
			t.Fatalf("enacted while views diverged: %v", d)
		}
	}
	sawDefer := false
	for _, d := range ctl.Log() {
		if d.Action == ActionDeferSettling && d.Reason == "membership views still converging" {
			sawDefer = true
		}
	}
	if !sawDefer {
		t.Fatal("no convergence deferral logged")
	}
	converged = true
	drive(ctl, clock, 2)
	if len(store.joins) == 0 {
		t.Fatal("no join once views converged")
	}
}

// TestBoundaryAwareScaleDown: with whole-hour billing, a scale-down is
// deferred until the victim approaches its billed-unit boundary, then
// enacted.
func TestBoundaryAwareScaleDown(t *testing.T) {
	store := newFakeStore(6, 10)
	clock := &fakeClock{}
	cfg := testConfig(10)
	cfg.Pricing = cost.EC2East2013() // whole-hour billing
	cfg.Interval = time.Minute
	cfg.Cooldown = 3 * time.Minute
	ctl := New(store, &scriptSampler{loads: []float64{3000}}, clock, cfg) // wants 4 < 6

	// Streaks accumulate over the first DownStreak periods, then the
	// boundary defers until ~an hour from the (zero) anchor.
	sawDefer := false
	for i := 0; i < 65; i++ {
		d := ctl.Step()
		if d.Action == ActionDeferBoundary {
			sawDefer = true
		}
		if d.Action.Enacted() && clock.now < 59*time.Minute {
			t.Fatalf("scale-down enacted %v before the billed-unit boundary: %v", time.Hour-clock.now, d)
		}
		clock.advance(cfg.Interval)
	}
	if !sawDefer {
		t.Fatal("no defer-boundary decision logged")
	}
	if len(store.decoms) == 0 {
		t.Fatal("scale-down never enacted at the boundary")
	}
}

// TestUnsatisfiableConstraintsHold: constraints no size can meet (level
// unreachable after failures) must hold the cluster, not chase the
// ceiling.
func TestUnsatisfiableConstraintsHold(t *testing.T) {
	store := newFakeStore(4, 10)
	clock := &fakeClock{}
	cfg := testConfig(10)
	cfg.Constraints.ReadLevel = 3 // RF 3 − 1 failure < 3: unreachable at any size
	ctl := New(store, &scriptSampler{loads: []float64{6000}}, clock, cfg)
	drive(ctl, clock, 10)
	for _, d := range ctl.Log() {
		if d.Action.Enacted() {
			t.Fatalf("unsatisfiable constraints enacted a change: %v", d)
		}
		if d.Action == ActionHold && !strings.Contains(d.Reason, "holding:") {
			t.Fatalf("hold without the unsatisfiable reason: %v", d)
		}
	}
}

// TestDecisionLogDeterministic: the controller is a pure function of
// its inputs — the same scripted run yields an identical decision log.
func TestDecisionLogDeterministic(t *testing.T) {
	run := func() []string {
		store := newFakeStore(4, 12)
		clock := &fakeClock{}
		loads := []float64{0, 900, 2500, 6000, 6000, 6000, 6000, 4000, 2000, 800, 800, 800, 800, 800, 800, 800}
		ctl := New(store, &scriptSampler{loads: loads, stale: 0.02}, clock, testConfig(12))
		drive(ctl, clock, 25)
		var lines []string
		for _, d := range ctl.Log() {
			lines = append(lines, d.String())
		}
		return lines
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logs diverge at %d:\n  a: %s\n  b: %s", i, a[i], b[i])
		}
	}
	if len(a) != 25 {
		t.Fatalf("log length = %d, want 25", len(a))
	}
}

// TestLogLimitBounds: LogLimit keeps the retained log bounded.
func TestLogLimitBounds(t *testing.T) {
	store := newFakeStore(4, 10)
	clock := &fakeClock{}
	cfg := testConfig(10)
	cfg.LogLimit = 8
	ctl := New(store, &scriptSampler{loads: []float64{1000}}, clock, cfg)
	drive(ctl, clock, 100)
	if got := len(ctl.Log()); got > 16 {
		t.Fatalf("log length %d exceeds 2×limit", got)
	}
}

// TestWorkloadFromSnapshot: the distilled workload carries aggregate
// load, read fraction and the read-weighted per-key write rate.
func TestWorkloadFromSnapshot(t *testing.T) {
	snap := monitor.Snapshot{
		ReadRate:  800,
		WriteRate: 200,
		TopKeys: []monitor.KeyRate{
			{Key: "hot", ReadShare: 0.5, WriteRate: 40},
			{Key: "warm", ReadShare: 0.1, WriteRate: 10},
		},
		TailKeys:     100,
		TailReadShr:  0.4,
		TailWriteRte: 150,
	}
	w := WorkloadFrom(snap, 2*time.Millisecond)
	if w.OpsPerSecond != 1000 {
		t.Errorf("ops = %f", w.OpsPerSecond)
	}
	if w.ReadFraction != 0.8 {
		t.Errorf("read fraction = %f", w.ReadFraction)
	}
	want := 0.5*40 + 0.1*10 + 0.4*1.5
	if diff := w.WriteRate - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("per-key write rate = %f, want %f", w.WriteRate, want)
	}
	if w.BaseLatency != 2*time.Millisecond {
		t.Errorf("base latency = %v", w.BaseLatency)
	}
}

// TestMeasuredStaleScaleUp: when the windowed observed stale rate
// violates the constraint while the model calls the current size
// compliant, the violation is scale-up pressure — the measured feedback
// loop, not just the queueing model, drives the controller.
func TestMeasuredStaleScaleUp(t *testing.T) {
	store := newFakeStore(6, 10)
	clock := &fakeClock{}
	cfg := testConfig(10)
	cfg.Constraints.MaxStaleRate = 0.05
	// 4800 ops/s recommends exactly the current 6 nodes; only the
	// measured 20% stale rate pushes past it.
	ctl := New(store, &scriptSampler{loads: []float64{4800}, stale: 0.20}, clock, cfg)
	drive(ctl, clock, 4)

	if len(store.joins) == 0 {
		t.Fatal("measured staleness violation never scaled up")
	}
	sawReason := false
	for _, d := range ctl.Log() {
		if d.Action == ActionJoin && strings.Contains(d.Reason, "measured stale") {
			sawReason = true
		}
	}
	if !sawReason {
		t.Fatalf("join not attributed to the measured stale violation: %v", ctl.Log())
	}
	// Control: the same load with compliant measured staleness holds.
	store2 := newFakeStore(6, 10)
	ctl2 := New(store2, &scriptSampler{loads: []float64{4800}, stale: 0.01}, &fakeClock{}, cfg)
	drive(ctl2, &fakeClock{}, 4)
	if len(store2.joins) != 0 {
		t.Fatal("compliant staleness scaled up")
	}
}

// TestCeilingBlockedLogged: pressure pointing past MaxNodes is
// journaled as blocked-ceiling, not as a silent hold.
func TestCeilingBlockedLogged(t *testing.T) {
	store := newFakeStore(8, 8)
	clock := &fakeClock{}
	cfg := testConfig(8)                                                   // MaxNodes defaults to the 8 candidates
	ctl := New(store, &scriptSampler{loads: []float64{12000}}, clock, cfg) // wants ~15
	drive(ctl, clock, 5)

	sawCeiling := false
	for _, d := range ctl.Log() {
		if d.Action.Enacted() {
			t.Fatalf("enacted past the ceiling: %v", d)
		}
		if d.Action == ActionBlockedCeiling {
			sawCeiling = true
			if d.Target != 8 {
				t.Errorf("blocked-ceiling target = %d, want 8", d.Target)
			}
		}
	}
	if !sawCeiling {
		t.Fatal("no blocked-ceiling decision logged at the ceiling")
	}
}

// TestBoundaryExactInstantActs: a victim sitting exactly on its
// billed-unit boundary has nothing left to burn — the scale-down must
// act, not defer for another whole unit.
func TestBoundaryExactInstantActs(t *testing.T) {
	store := newFakeStore(6, 10)
	clock := &fakeClock{}
	cfg := testConfig(10)
	cfg.Pricing = cost.EC2East2013() // whole-hour billing
	cfg.Interval = time.Minute
	cfg.Cooldown = 2 * time.Minute
	cfg.DownStreak = 2
	ctl := New(store, &scriptSampler{loads: []float64{3000}}, clock, cfg) // wants 4 < 6

	// Build the down streak off-boundary, then step exactly on the hour.
	clock.now = 57 * time.Minute
	ctl.Step()
	clock.now = 58 * time.Minute
	ctl.Step()
	clock.now = time.Hour
	d := ctl.Step()
	if d.Action != ActionDecommission {
		t.Fatalf("on-boundary step = %v, want decommission", d)
	}
}

// TestLogSnapshotStableAcrossTrim: a decision log handed out before a
// LogLimit trim must not be rewritten by later control periods.
func TestLogSnapshotStableAcrossTrim(t *testing.T) {
	store := newFakeStore(4, 10)
	clock := &fakeClock{}
	cfg := testConfig(10)
	cfg.LogLimit = 4
	ctl := New(store, &scriptSampler{loads: []float64{1000}}, clock, cfg)
	drive(ctl, clock, 8) // exactly 2×limit entries, next append trims
	snap := ctl.Log()
	first := snap[0]
	drive(ctl, clock, 8)
	if snap[0] != first {
		t.Fatalf("snapshot mutated across trim: %v -> %v", first, snap[0])
	}
}
