// Package autoscale closes the paper's cost loop: a deterministic
// controller that periodically samples the observed workload (operation
// rates, read fraction, per-key write pressure and the measured stale
// rate from internal/monitor), feeds it to the provisioning optimizer
// (internal/provision) and *enacts* the recommended cluster size through
// the elastic-membership API (kv.Cluster.TryJoin/TryDecommission).
//
// Where Harmony and Bismar adapt the consistency *level* to the
// workload, this controller adapts the *deployment*: scale up when the
// observed load makes the current size infeasible (capacity,
// utilization headroom or predicted staleness), scale down when a
// smaller cluster would still carry the load with margin. Enactment is
// deliberately conservative:
//
//   - hysteresis bands: a size change is enacted only after the
//     recommendation persisted for UpStreak/DownStreak consecutive
//     samples, and a scale-down additionally requires the smaller
//     cluster to fit the observed load inflated by Headroom — a
//     workload hovering at a threshold cannot flap the cluster;
//   - cooldown: after an enacted change, no further change for
//     Cooldown;
//   - one change at a time: nothing is enacted while a membership
//     change is still streaming or a node is inside its
//     Config.WarmupDuration window (kv.Cluster.MembershipSettled), nor
//     — under gossip-disseminated membership — while live views still
//     disagree about the ring (Store.MembershipConverged);
//   - floor: the cluster never drops below RF+FailureBudget nodes, and
//     never grows beyond MaxNodes;
//   - billing-granularity awareness: instances are billed in
//     Pricing.BillingGranularity units (2013 EC2: whole hours), so a
//     scale-down is deferred until the victim approaches the boundary
//     of the unit it already paid for, and the victim chosen is the
//     live member closest to its boundary.
//
// Every control period appends a Decision to the log — what was
// observed, what the optimizer recommended, what was done and why — so
// experiments and operators can audit the loop. The controller is a
// pure function of its inputs: same seed, same simulation, same
// decision log.
package autoscale

import (
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/provision"
)

// Clock is the scheduling surface the controller needs; the simulated
// transport and the live engine both provide it.
type Clock interface {
	Now() time.Duration
	Schedule(d time.Duration, fn func())
}

// Store is the membership surface the controller drives. kv.Cluster
// implements it; tests substitute fakes.
type Store interface {
	Members() []netsim.NodeID
	State(id netsim.NodeID) kv.NodeState
	MembershipSettled() bool
	// MembershipConverged reports whether every live member's view of
	// the ring agrees with the latest enacted membership. Under gossip
	// dissemination an enacted change is only eventually visible, so
	// the controller holds further changes until views converge; stores
	// with atomic membership return true unconditionally.
	MembershipConverged() bool
	TryJoin(id netsim.NodeID) error
	TryDecommission(id netsim.NodeID) error
}

// Sampler supplies workload observations. *monitor.Monitor implements
// it.
type Sampler interface {
	Snapshot() monitor.Snapshot
}

// Action is what the controller did (or deliberately did not do) at one
// control period.
type Action int

// Controller actions.
const (
	// ActionHold: current size matches the recommendation (or there is
	// no evidence to act on).
	ActionHold Action = iota
	// ActionJoin: a spare node was asked to join.
	ActionJoin
	// ActionDecommission: a member was asked to leave.
	ActionDecommission
	// ActionDeferHysteresis: the recommendation has not persisted long
	// enough (streaks), or the smaller cluster lacks headroom.
	ActionDeferHysteresis
	// ActionDeferCooldown: too soon after the last enacted change.
	ActionDeferCooldown
	// ActionDeferSettling: a membership change is still in flight or a
	// node is still warming.
	ActionDeferSettling
	// ActionDeferBoundary: scale-down waits for the victim's
	// billed-unit boundary (the unit is already paid for).
	ActionDeferBoundary
	// ActionBlockedFloor: already at RF+FailureBudget.
	ActionBlockedFloor
	// ActionBlockedCeiling: already at MaxNodes.
	ActionBlockedCeiling
	// ActionBlockedNoSpare: no joinable topology node (or the store
	// rejected the request).
	ActionBlockedNoSpare
)

// String names the action for logs and tables.
func (a Action) String() string {
	switch a {
	case ActionJoin:
		return "join"
	case ActionDecommission:
		return "decommission"
	case ActionDeferHysteresis:
		return "defer-hysteresis"
	case ActionDeferCooldown:
		return "defer-cooldown"
	case ActionDeferSettling:
		return "defer-settling"
	case ActionDeferBoundary:
		return "defer-boundary"
	case ActionBlockedFloor:
		return "blocked-floor"
	case ActionBlockedCeiling:
		return "blocked-ceiling"
	case ActionBlockedNoSpare:
		return "blocked-no-spare"
	}
	return "hold"
}

// Enacted reports whether the action changed the membership.
func (a Action) Enacted() bool { return a == ActionJoin || a == ActionDecommission }

// Config parameterizes the controller. The zero value of every tuning
// knob selects a working default (noted per field).
type Config struct {
	// NodeType is the homogeneous instance profile the deployment runs
	// on — the optimizer's capacity and cost model inputs.
	NodeType provision.NodeType
	// Constraints bound acceptable deployments; RF+FailureBudget is the
	// size floor.
	Constraints provision.Constraints
	// Pricing supplies the billing granularity for boundary-aware
	// scale-down (granularity ≤ 0 falls back to whole hours, matching
	// cost.Pricing.BillFor).
	Pricing cost.Pricing
	// Candidates is the orderable pool of topology nodes the cluster
	// may occupy; spares are picked from it lowest-id first. Required.
	Candidates []netsim.NodeID
	// Interval is the control period (default 1 s).
	Interval time.Duration
	// Cooldown is the minimum gap between enacted changes (default
	// 3×Interval).
	Cooldown time.Duration
	// UpStreak / DownStreak are the hysteresis bands: consecutive
	// samples the recommendation must persist before a join (default 2)
	// or a decommission (default 4) is enacted.
	UpStreak   int
	DownStreak int
	// Headroom inflates the observed load when judging whether a
	// smaller cluster still fits (default 0.15 = 15% margin).
	Headroom float64
	// MaxNodes caps the cluster size (default len(Candidates)).
	MaxNodes int
	// BaseLatency is the network propagation baseline fed to the
	// staleness model (default 1 ms).
	BaseLatency time.Duration
	// LogLimit bounds the retained decision log; 0 keeps everything.
	LogLimit int
}

// withDefaults normalizes the zero-value knobs.
func (cfg Config) withDefaults() Config {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 3 * cfg.Interval
	}
	if cfg.UpStreak <= 0 {
		cfg.UpStreak = 2
	}
	if cfg.DownStreak <= 0 {
		cfg.DownStreak = 4
	}
	if cfg.Headroom <= 0 {
		cfg.Headroom = 0.15
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = len(cfg.Candidates)
	}
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = time.Millisecond
	}
	return cfg
}

// Decision records one control period: what was observed, what the
// optimizer recommended, and what the controller did about it.
type Decision struct {
	At      time.Duration
	Members int
	Target  int
	Action  Action
	// Node is the joined/decommissioned node (or the deferred victim
	// for ActionDeferBoundary); -1 otherwise.
	Node netsim.NodeID
	// Plan is the optimizer's recommendation for the observed workload.
	Plan provision.Plan
	// Workload is what the monitor snapshot distilled to.
	Workload provision.Workload
	// ObservedStale is the measured stale-read rate over the monitor
	// window.
	ObservedStale float64
	Reason        string
}

// String renders the decision for journals.
func (d Decision) String() string {
	return fmt.Sprintf("%v members=%d target=%d %s (%s)",
		d.At, d.Members, d.Target, d.Action, d.Reason)
}
