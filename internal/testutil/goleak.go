// Package testutil holds test-process plumbing shared across the
// repo's test packages. It runs in the test binary, not the sim, so it
// is exempt from the sim-purity rules by scope.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyNoLeaks runs a package's tests and fails the process if any
// non-baseline goroutine outlives them. The live engine and the facade
// spawn goroutines freely (timers, fan-out workers); this is the
// backstop proving they are all joined or defused by the time the
// package's tests finish.
//
// Use from a package's TestMain:
//
//	func TestMain(m *testing.M) { testutil.VerifyNoLeaks(m) }
func VerifyNoLeaks(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := checkNoLeaks(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "goroutine leak after tests:\n%v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// checkNoLeaks polls until no leaked goroutines remain or the deadline
// passes. The retry loop absorbs transients: a timer that fired during
// shutdown briefly runs its callback goroutine before exiting.
func checkNoLeaks(within time.Duration) error {
	deadline := time.Now().Add(within)
	var last []string
	for {
		last = leakedGoroutines()
		if len(last) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("%d goroutine(s) still running:\n\n%s", len(last), strings.Join(last, "\n\n"))
}

// baseline lists stack substrings of goroutines the runtime and the
// testing framework keep alive for the whole process.
var baseline = []string{
	"testing.(*M).Run",
	"testing.Main",
	"testing.runTests",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.runfinq",
	"runtime.gcBgMarkWorker",
	"runtime.ensureSigM",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ReadTrace",
}

// leakedGoroutines snapshots all goroutine stacks and returns those
// that are neither this goroutine nor baseline process plumbing.
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	records := strings.Split(string(buf), "\n\n")
	var leaked []string
	for i, rec := range records {
		if i == 0 {
			continue // the goroutine running this check
		}
		ok := true
		for _, b := range baseline {
			if strings.Contains(rec, b) {
				ok = false
				break
			}
		}
		if ok {
			leaked = append(leaked, strings.TrimSpace(rec))
		}
	}
	return leaked
}
