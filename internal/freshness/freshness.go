// Package freshness implements the paper's third future-work direction
// (§V): an eventually-consistent mode with guarantees on data freshness.
// Two mechanisms are provided:
//
//   - Deadline enforcement: every write is audited with a background
//     read at level ALL shortly before its convergence deadline; the
//     audit piggybacks on the store's read-repair machinery, pushing the
//     write to any replica that still misses it. Compliance is the
//     fraction of writes fully propagated within the deadline.
//
//   - Bounded-staleness reads: a session whose reads choose the smallest
//     level that keeps the estimated stale-read probability under the
//     session's bound, given the current monitor snapshot — per-read
//     freshness rather than per-period tuning.
//
// Guarantee tiers (gold/silver/bronze) map deadlines to what the network
// topology can deliver.
package freshness

import (
	"fmt"
	"time"

	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
)

// Guarantee is a named convergence deadline.
type Guarantee struct {
	Name     string
	Deadline time.Duration
}

// The standard tiers. Gold is only achievable on low-latency topologies;
// Tiers reports which tiers a deployment can honor.
var (
	Gold   = Guarantee{Name: "gold", Deadline: 150 * time.Millisecond}
	Silver = Guarantee{Name: "silver", Deadline: 500 * time.Millisecond}
	Bronze = Guarantee{Name: "bronze", Deadline: 2 * time.Second}
)

// CacheBound is the freshness bound of the coordinator read cache: the
// maximum age at which a cached value of a key with Poisson write rate
// lambda may be served while keeping the expected stale rate of cache
// hits at or under alpha. It is the per-key analogue of the bounded-
// staleness sessions below — a cache hit is a degenerate level-0 read
// whose staleness probability 1−exp(−λ·age) must clear the same bound
// the session would enforce. The formula lives in kv (the serving side
// enforces it); this is its public, model-facing name.
func CacheBound(alpha, lambda float64) time.Duration {
	return kv.CacheBound(alpha, lambda)
}

// Tiers reports the guarantees a deployment can plausibly honor given
// its observed propagation time: the deadline must exceed twice the
// current T_p estimate.
func Tiers(snap monitor.Snapshot) []Guarantee {
	var out []Guarantee
	for _, g := range []Guarantee{Gold, Silver, Bronze} {
		if g.Deadline > 2*snap.PropagationTime() {
			out = append(out, g)
		}
	}
	return out
}

// Clock is the scheduling surface the enforcer needs.
type Clock interface {
	Now() time.Duration
	Schedule(d time.Duration, fn func())
}

// Enforcer wraps a session so every write is audited against a
// convergence deadline.
type Enforcer struct {
	Inner     kv.Session
	Cluster   *kv.Cluster
	Clock     Clock
	Guarantee Guarantee
	// AuditMargin is how long before the deadline the audit read fires,
	// leaving time for the repair to land.
	AuditMargin time.Duration

	writes  uint64
	audits  uint64
	repairs uint64 // audits that found at least one divergent replica
}

// NewEnforcer wraps inner with deadline auditing.
func NewEnforcer(inner kv.Session, cluster *kv.Cluster, clock Clock, g Guarantee) *Enforcer {
	return &Enforcer{
		Inner: inner, Cluster: cluster, Clock: clock, Guarantee: g,
		AuditMargin: g.Deadline / 4,
	}
}

// Read implements kv.Session.
func (e *Enforcer) Read(key string, cb func(kv.ReadResult)) { e.Inner.Read(key, cb) }

// Write implements kv.Session: the write proceeds normally and an audit
// read at ALL fires before the deadline, repairing laggard replicas.
func (e *Enforcer) Write(key string, value []byte, cb func(kv.WriteResult)) {
	e.writes++
	e.Inner.Write(key, value, func(res kv.WriteResult) {
		if res.Err == nil {
			delay := e.Guarantee.Deadline - e.AuditMargin - res.Latency
			if delay < 0 {
				delay = 0
			}
			e.Clock.Schedule(delay, func() { e.audit(key, res) })
		}
		cb(res)
	})
}

// Delete implements kv.Session. Tombstones are not audited: the audit
// compares the returned version against the write's, and a deleted key
// reads back with a zero version regardless of propagation.
func (e *Enforcer) Delete(key string, cb func(kv.WriteResult)) { e.Inner.Delete(key, cb) }

// BatchRead implements kv.Session.
func (e *Enforcer) BatchRead(keys []string, cb func([]kv.ReadResult)) { e.Inner.BatchRead(keys, cb) }

// BatchWrite implements kv.Session: every successful non-delete item is
// audited against the deadline exactly like a single write.
func (e *Enforcer) BatchWrite(ops []kv.BatchOp, cb func([]kv.WriteResult)) {
	for _, op := range ops {
		if !op.Delete {
			e.writes++
		}
	}
	e.Inner.BatchWrite(ops, func(res []kv.WriteResult) {
		for i, r := range res {
			if r.Err == nil && !ops[i].Delete {
				delay := e.Guarantee.Deadline - e.AuditMargin - r.Latency
				if delay < 0 {
					delay = 0
				}
				key, w := ops[i].Key, r
				e.Clock.Schedule(delay, func() { e.audit(key, w) })
			}
		}
		cb(res)
	})
}

func (e *Enforcer) audit(key string, w kv.WriteResult) {
	e.audits++
	e.Cluster.Read(key, kv.All, func(res kv.ReadResult) {
		// The ALL read compared every replica's version; read repair
		// (always on for contacted replicas) pushed the freshest cell to
		// any replica that answered with an older one. A version still
		// older than the audited write means some replica lagged.
		if res.Err == nil && w.Version.After(res.Version) {
			e.repairs++
		}
	})
}

// Stats reports enforcement counters.
func (e *Enforcer) Stats() (writes, audits, lagging uint64) {
	return e.writes, e.audits, e.repairs
}

// Compliance measures deadline compliance from the oracle's propagation
// histogram: the fraction of writes whose full propagation finished
// within the deadline.
func Compliance(o *kv.Oracle, g Guarantee) float64 {
	h := o.Propagation()
	if h.Count() == 0 {
		return 1
	}
	// Binary-search the quantile whose value is the deadline.
	lo, hi := 0.0, 1.0
	for i := 0; i < 20; i++ {
		mid := (lo + hi) / 2
		if h.Quantile(mid) <= g.Deadline {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// BoundedSession is a session whose reads pick, per operation, the
// smallest level whose estimated stale probability stays under Bound.
type BoundedSession struct {
	Cluster    *kv.Cluster
	Monitor    *monitor.Monitor
	Estimator  harmony.Estimator
	Bound      float64
	WriteLevel kv.Level
}

// NewBoundedSession builds a bounded-staleness session over a monitored
// cluster.
func NewBoundedSession(cl *kv.Cluster, mon *monitor.Monitor, bound float64) *BoundedSession {
	return &BoundedSession{
		Cluster:    cl,
		Monitor:    mon,
		Estimator:  harmony.Estimator{RF: cl.RF(), WriteK: 1},
		Bound:      bound,
		WriteLevel: kv.One,
	}
}

// Read implements kv.Session.
func (s *BoundedSession) Read(key string, cb func(kv.ReadResult)) {
	s.Cluster.Read(key, kv.Count(s.boundedK()), cb)
}

// Write implements kv.Session.
func (s *BoundedSession) Write(key string, value []byte, cb func(kv.WriteResult)) {
	s.Cluster.Write(key, value, s.WriteLevel, cb)
}

// Delete implements kv.Session.
func (s *BoundedSession) Delete(key string, cb func(kv.WriteResult)) {
	s.Cluster.Delete(key, s.WriteLevel, cb)
}

// BatchRead implements kv.Session: the bound is evaluated once and the
// whole batch reads at the chosen level.
func (s *BoundedSession) BatchRead(keys []string, cb func([]kv.ReadResult)) {
	s.Cluster.ReadBatch(keys, kv.Count(s.boundedK()), cb)
}

// BatchWrite implements kv.Session.
func (s *BoundedSession) BatchWrite(ops []kv.BatchOp, cb func([]kv.WriteResult)) {
	s.Cluster.WriteBatch(ops, s.WriteLevel, cb)
}

// boundedK picks the smallest read level whose estimated stale
// probability stays under the bound.
func (s *BoundedSession) boundedK() int {
	snap := s.Monitor.Snapshot()
	for cand := 1; cand <= s.Estimator.RF; cand++ {
		if s.Estimator.StaleRate(cand, snap) <= s.Bound {
			return cand
		}
	}
	return s.Estimator.RF
}

// String describes the guarantee.
func (g Guarantee) String() string {
	return fmt.Sprintf("%s(≤%v)", g.Name, g.Deadline)
}
