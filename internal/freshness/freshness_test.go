package freshness

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
)

type fixture struct {
	eng *sim.Engine
	tr  *netsim.Transport
	cl  *kv.Cluster
	mon *monitor.Monitor
}

func newFixture(seed uint64) *fixture {
	eng := sim.New(seed)
	topo := netsim.G5KTwoSites(6)
	tr := netsim.NewTransport(eng, topo)
	cfg := kv.DefaultConfig()
	cfg.Seed = seed
	cfg.HintReplayInterval = 0
	cfg.AntiEntropyInterval = 0
	cl := kv.New(topo, tr, cfg)
	mon := monitor.New(cl.RF(), tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())
	return &fixture{eng: eng, tr: tr, cl: cl, mon: mon}
}

func TestComplianceFromOracle(t *testing.T) {
	f := newFixture(1)
	done := 0
	for i := 0; i < 100; i++ {
		f.cl.Write(fmt.Sprintf("k%d", i), []byte("v"), kv.One, func(kv.WriteResult) { done++ })
	}
	f.eng.Run()
	if done != 100 {
		t.Fatalf("writes completed: %d", done)
	}
	// All propagation finished; Bronze (2s) must be fully compliant,
	// and an absurdly tight deadline must not be.
	if c := Compliance(f.cl.Oracle(), Bronze); c < 0.95 {
		t.Errorf("bronze compliance = %f", c)
	}
	tight := Guarantee{Name: "1us", Deadline: time.Microsecond}
	if c := Compliance(f.cl.Oracle(), tight); c > 0.1 {
		t.Errorf("microsecond compliance = %f", c)
	}
}

func TestTiersFilterByPropagation(t *testing.T) {
	snap := monitor.Snapshot{RankDelays: []time.Duration{time.Millisecond, 5 * time.Millisecond, 40 * time.Millisecond}}
	tiers := Tiers(snap)
	if len(tiers) != 3 {
		t.Errorf("fast system should honor all tiers, got %v", tiers)
	}
	slow := monitor.Snapshot{RankDelays: []time.Duration{time.Millisecond, 100 * time.Millisecond, 400 * time.Millisecond}}
	tiers = Tiers(slow)
	for _, g := range tiers {
		if g.Name == "gold" || g.Name == "silver" {
			t.Errorf("slow system should not promise %s", g.Name)
		}
	}
}

func TestEnforcerAuditsWrites(t *testing.T) {
	f := newFixture(2)
	inner := kv.StaticSession{Cluster: f.cl, ReadLevel: kv.One, WriteLevel: kv.One}
	enf := NewEnforcer(inner, f.cl, f.tr, Silver)
	done := 0
	for i := 0; i < 50; i++ {
		enf.Write(fmt.Sprintf("k%d", i), []byte("v"), func(kv.WriteResult) { done++ })
	}
	f.eng.Run()
	writes, audits, _ := enf.Stats()
	if writes != 50 || done != 50 {
		t.Fatalf("writes = %d done = %d", writes, done)
	}
	if audits != 50 {
		t.Errorf("audits = %d, want 50", audits)
	}
	// Reads pass through.
	got := false
	enf.Read("k0", func(r kv.ReadResult) { got = r.Exists })
	f.eng.Run()
	if !got {
		t.Error("enforcer read did not pass through")
	}
}

func TestEnforcerRepairsLaggards(t *testing.T) {
	f := newFixture(3)
	// Partition one replica of a known key so it misses the write, then
	// heal before the audit fires: the audit's ALL read repairs it.
	key := "lagging-key"
	reps := f.cl.Strategy().Replicas(key)
	lag := reps[len(reps)-1]
	var others []netsim.NodeID
	for _, id := range f.cl.Topology().Nodes() {
		if id != lag {
			others = append(others, id)
		}
	}
	f.tr.Partition([]netsim.NodeID{lag}, others)

	inner := kv.StaticSession{Cluster: f.cl, ReadLevel: kv.One, WriteLevel: kv.One}
	enf := NewEnforcer(inner, f.cl, f.tr, Bronze)
	var wres kv.WriteResult
	enf.Write(key, []byte("v"), func(r kv.WriteResult) { wres = r })
	f.eng.RunFor(500 * time.Millisecond)
	f.tr.Heal()
	f.eng.Run()

	cell, ok := f.cl.Node(lag).Engine().Peek(key)
	if !ok || cell.Version != wres.Version {
		t.Errorf("audit did not repair laggard: %v want %v", cell.Version, wres.Version)
	}
	_, audits, lagging := enf.Stats()
	if audits != 1 {
		t.Errorf("audits = %d", audits)
	}
	_ = lagging
}

func TestBoundedSessionEscalatesUnderWrites(t *testing.T) {
	f := newFixture(4)
	var levels []kv.Level
	f.cl.AddHooks(&kv.Hooks{ReadCompleted: func(_ time.Duration, r kv.ReadResult) {
		levels = append(levels, r.Level)
	}})
	sess := NewBoundedSession(f.cl, f.mon, 0.02)

	// Quiet phase: reads should run at ONE.
	done := false
	sess.Read("k", func(kv.ReadResult) { done = true })
	for !done && f.eng.Step() {
	}
	if len(levels) == 0 || levels[0].Replicas(3) != 1 {
		t.Fatalf("quiet read level: %v", levels)
	}

	// Hot-write phase: hammer one key, then read it.
	for i := 0; i < 2000; i++ {
		f.cl.Write("hot", []byte("v"), kv.One, func(kv.WriteResult) {})
		if i%20 == 0 {
			f.eng.RunFor(5 * time.Millisecond)
		}
	}
	f.eng.RunFor(time.Second)
	levels = nil
	done = false
	sess.Read("hot", func(kv.ReadResult) { done = true })
	for !done && f.eng.Step() {
	}
	if len(levels) == 0 || levels[0].Replicas(3) == 1 {
		t.Errorf("bounded session did not escalate under write pressure: %v", levels)
	}
}

func TestGuaranteeString(t *testing.T) {
	if Gold.String() != "gold(≤150ms)" {
		t.Errorf("gold string: %s", Gold.String())
	}
}
