package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/netsim"
)

// newLiveCluster builds a small live deployment with compressed
// latencies so tests finish quickly.
func newLiveCluster(seed uint64) (*Engine, *kv.Cluster) {
	topo := netsim.SingleDC(4)
	eng := New(topo, seed)
	eng.Scale = 0.2
	cfg := kv.DefaultConfig()
	cfg.Seed = seed
	cfg.HintReplayInterval = 0
	cfg.AntiEntropyInterval = 0
	var cl *kv.Cluster
	eng.Do(func() { cl = kv.New(topo, eng, cfg) })
	return eng, cl
}

func blockingWrite(eng *Engine, cl *kv.Cluster, key string, val []byte, lvl kv.Level) kv.WriteResult {
	ch := make(chan kv.WriteResult, 1)
	eng.Do(func() { cl.Write(key, val, lvl, func(r kv.WriteResult) { ch <- r }) })
	return <-ch
}

func blockingRead(eng *Engine, cl *kv.Cluster, key string, lvl kv.Level) kv.ReadResult {
	ch := make(chan kv.ReadResult, 1)
	eng.Do(func() { cl.Read(key, lvl, func(r kv.ReadResult) { ch <- r }) })
	return <-ch
}

func TestLiveWriteReadRoundtrip(t *testing.T) {
	eng, cl := newLiveCluster(1)
	defer eng.Close()
	w := blockingWrite(eng, cl, "k", []byte("hello"), kv.Quorum)
	if w.Err != nil {
		t.Fatalf("write: %v", w.Err)
	}
	r := blockingRead(eng, cl, "k", kv.Quorum)
	if r.Err != nil || string(r.Value) != "hello" || r.Stale {
		t.Fatalf("read: %+v", r)
	}
}

// TestLiveConcurrentClients exercises the engine with many goroutines;
// run under -race this validates the locking discipline.
func TestLiveConcurrentClients(t *testing.T) {
	eng, cl := newLiveCluster(2)
	defer eng.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("key-%d-%d", g, i%5)
				if w := blockingWrite(eng, cl, key, []byte("v"), kv.One); w.Err != nil {
					errs <- w.Err
					return
				}
				if r := blockingRead(eng, cl, key, kv.All); r.Err != nil {
					errs <- r.Err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client error: %v", err)
	}
}

func TestLiveFailureAndRecovery(t *testing.T) {
	eng, cl := newLiveCluster(3)
	defer eng.Close()
	blockingWrite(eng, cl, "k", []byte("v"), kv.All)
	var reps []netsim.NodeID
	eng.Do(func() { reps = cl.Strategy().Replicas("k") })
	eng.Do(func() { cl.Fail(reps[0]) })
	time.Sleep(300 * time.Millisecond) // detection delay (scaled 0.2 of 1s)
	r := blockingRead(eng, cl, "k", kv.Quorum)
	if r.Err != nil {
		t.Fatalf("quorum read with one replica down: %v", r.Err)
	}
	eng.Do(func() { cl.Recover(reps[0]) })
}

func TestLiveCloseStopsDelivery(t *testing.T) {
	eng, cl := newLiveCluster(4)
	delivered := make(chan struct{}, 1)
	eng.Do(func() {
		cl.Read("k", kv.One, func(kv.ReadResult) { delivered <- struct{}{} })
	})
	eng.Close()
	select {
	case <-delivered:
		// Acceptable: the reply raced Close.
	case <-time.After(200 * time.Millisecond):
		// Also acceptable: closed engines drop in-flight work.
	}
}

func TestLiveMeterCounts(t *testing.T) {
	eng, cl := newLiveCluster(5)
	defer eng.Close()
	blockingWrite(eng, cl, "k", []byte("v"), kv.All)
	m := eng.Meter()
	if m.TotalBytes() == 0 {
		t.Error("no traffic metered")
	}
}
