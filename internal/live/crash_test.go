package live

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// newLiveLSMCluster builds a live deployment on the LSM engine with
// file-backed WALs in dir: every accepted mutation pays a real file
// append, and the fsync cadence maps to real fdatasync calls — the WAL
// and flush latencies of the model become actual I/O here.
func newLiveLSMCluster(seed uint64, dir string) (*Engine, *kv.Cluster) {
	topo := netsim.SingleDC(4)
	eng := New(topo, seed)
	eng.Scale = 0.2
	cfg := kv.DefaultConfig()
	cfg.Seed = seed
	cfg.HintReplayInterval = 0
	cfg.AntiEntropyInterval = 0
	cfg.DetectionDelay = 200 * time.Millisecond
	cfg.Engine = storage.LSM
	cfg.WALSyncBytes = 0 // sync every record: the crash below loses nothing
	cfg.WALDir = dir
	var cl *kv.Cluster
	eng.Do(func() { cl = kv.New(topo, eng, cfg) })
	return eng, cl
}

// TestLiveLSMFileWALCrashRestart drives real file I/O through the live
// engine: writes append and fsync per-node WAL files on disk, a crash
// truncates the victim's file to its durable offset, and restart replays
// it back to full state.
func TestLiveLSMFileWALCrashRestart(t *testing.T) {
	dir := t.TempDir()
	eng, cl := newLiveLSMCluster(21, dir)
	defer eng.Do(func() { cl.Close() })
	defer eng.Close()

	versions := make(map[string]storage.Version)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("live%02d", i)
		w := blockingWrite(eng, cl, k, []byte("durable-payload"), kv.All)
		if w.Err != nil {
			t.Fatalf("write: %v", w.Err)
		}
		versions[k] = w.Version
	}

	// The WAL files must exist and carry bytes.
	var victim netsim.NodeID
	eng.Do(func() { victim = cl.Strategy().Replicas("live00")[0] })
	walFile := filepath.Join(dir, fmt.Sprintf("wal-%d.log", victim))
	if fi, err := os.Stat(walFile); err != nil || fi.Size() == 0 {
		t.Fatalf("WAL file missing or empty: %v", err)
	}

	eng.Do(func() { cl.Crash(victim) })
	time.Sleep(100 * time.Millisecond)
	var rs storage.RecoverStats
	eng.Do(func() { rs = cl.Restart(victim) })
	if rs.WALRecords == 0 && rs.RunsLoaded == 0 {
		t.Fatalf("file-backed restart recovered nothing: %+v", rs)
	}

	// Per-record sync: every ALL-acked write the victim replicates must
	// be back.
	eng.Do(func() {
		e := cl.Node(victim).Engine()
		for k, v := range versions {
			mine := false
			for _, r := range cl.Strategy().Replicas(k) {
				if r == victim {
					mine = true
					break
				}
			}
			if !mine {
				continue
			}
			if cell, ok := e.Peek(k); !ok || cell.Version != v {
				t.Errorf("key %s not recovered from file WAL: ok=%v %+v", k, ok, cell)
			}
		}
	})
	time.Sleep(300 * time.Millisecond) // detector marks the node up again
	if r := blockingRead(eng, cl, "live00", kv.All); r.Err != nil || r.Stale {
		t.Fatalf("ALL read after restart: %+v", r)
	}
}
