package live

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain asserts the wall-clock engine leaks no goroutines: every
// timer callback must have run to completion or become a no-op behind
// the closed flag by the time the package's tests finish.
func TestMain(m *testing.M) { testutil.VerifyNoLeaks(m) }
