// Package live runs the same store nodes as the discrete-event simulator
// but over wall-clock time and goroutines: message delivery uses real
// timers, and a cluster-wide mutex serializes handler execution (node
// logic is written for serialized delivery). It exists to demonstrate —
// and race-test — that the adaptive middleware is engine-agnostic: the
// monitor, controllers and tuners run unchanged against a live cluster.
package live

import (
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// Engine implements kv.Transport over real time.
type Engine struct {
	mu       sync.Mutex
	start    time.Time
	topo     *netsim.Topology
	rng      *stats.Source
	handlers map[netsim.NodeID]netsim.Handler
	meter    netsim.TrafficMeter
	down     map[netsim.NodeID]bool
	closed   bool

	// Serving mode (NewMesh). direct short-circuits zero-delay local
	// deliveries onto runq — a FIFO the lock holder drains before
	// releasing the lock — instead of paying a timer per message;
	// localSet marks the nodes this process serves (nil: all of them)
	// and mesh carries messages addressed to the rest over TCP.
	direct   bool
	localSet []bool
	runq     []queuedMsg
	mesh     *mesh

	// Direct-mode timer wheel (wheel.go): one runtime timer over a heap
	// of pending events, entries recycled through dfree, guards staged
	// in guards until drain end.
	dheap  []*delayed
	dfree  []*delayed
	guards []*delayed
	dseq   uint64
	dtimer *time.Timer
	darmed bool
	dwhen  time.Duration

	// Scale compresses sampled network latencies (0.1 runs a WAN
	// topology ten times faster); 0 defaults to 1.
	Scale float64
}

// queuedMsg is one run-queue entry of the direct delivery mode.
type queuedMsg struct {
	to, from netsim.NodeID
	payload  any
}

// New returns a live engine over topo.
func New(topo *netsim.Topology, seed uint64) *Engine {
	return &Engine{
		start:    time.Now(),
		topo:     topo,
		rng:      stats.NewSource(seed).Stream("live"),
		handlers: make(map[netsim.NodeID]netsim.Handler),
		down:     make(map[netsim.NodeID]bool),
		Scale:    1,
	}
}

// Now reports time since engine start.
func (e *Engine) Now() time.Duration { return time.Since(e.start) }

// Register installs a node handler. It must run under the engine lock:
// cluster construction happens inside Do, so this does not lock itself
// (the mutex is not reentrant). In a multi-process deployment the
// cluster constructs actors for every ring member, but only the nodes
// this process serves are registered: a remote node's idle local twin
// never receives a message (its ticks and any stray deliveries are
// dropped), the peer process serves it instead.
func (e *Engine) Register(id netsim.NodeID, h netsim.Handler) {
	if !e.isLocal(id) {
		return
	}
	e.handlers[id] = h
}

// isLocal reports whether this process serves id (the client endpoint
// and out-of-range ids count as local).
func (e *Engine) isLocal(id netsim.NodeID) bool {
	return e.localSet == nil || id < 0 || int(id) >= len(e.localSet) || e.localSet[id]
}

// Do runs fn holding the engine lock; external drivers (workloads, tests)
// use it to interact with cluster state safely.
func (e *Engine) Do(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn()
	e.drain()
}

// enqueue appends one direct-mode delivery to the run queue.
func (e *Engine) enqueue(to, from netsim.NodeID, payload any) {
	e.runq = append(e.runq, queuedMsg{to: to, from: from, payload: payload})
}

// drain runs queued deliveries until the run queue is empty (handlers
// may enqueue more), then hands any staged peer frames to the mesh
// writers. Every path that takes the engine lock drains before
// releasing it, so handler execution stays serialized and
// non-reentrant exactly as under timer delivery.
func (e *Engine) drain() {
	for i := 0; i < len(e.runq); i++ {
		q := e.runq[i]
		e.runq[i] = queuedMsg{}
		if e.closed || e.down[q.to] {
			continue
		}
		if h, ok := e.handlers[q.to]; ok {
			h(q.from, q.payload)
		}
	}
	e.runq = e.runq[:0]
	if len(e.guards) > 0 {
		e.flushGuards()
	}
	if len(e.dheap) > 0 {
		e.rearm()
	}
	if e.mesh != nil {
		e.mesh.flushLocked()
	}
}

func (e *Engine) scale(d time.Duration) time.Duration {
	s := e.Scale
	if s <= 0 {
		s = 1
	}
	return time.Duration(float64(d) * s)
}

// Send delivers payload after a sampled network delay. The caller must
// hold the engine lock (it always does: sends originate inside handlers
// or Do blocks).
func (e *Engine) Send(from, to netsim.NodeID, payload any, size int) {
	class := e.topo.Class(from, to)
	e.meter.Count(class, size)
	if e.mesh != nil && !e.isLocal(to) {
		e.mesh.send(from, to, payload)
		return
	}
	if e.down[from] || e.down[to] {
		e.meter.Dropped++
		return
	}
	if e.direct {
		e.enqueue(to, from, payload)
		return
	}
	delay := e.scale(e.topo.Latency.Law(class).Sample(e.rng))
	e.deliverAfter(delay, to, from, payload)
}

// SendLocal schedules a self-message (timer) on id.
func (e *Engine) SendLocal(id netsim.NodeID, payload any, delay time.Duration) {
	if e.direct {
		if delay <= 0 {
			e.enqueue(id, id, payload)
			return
		}
		d := e.newDelayed()
		d.when = e.Now() + e.scale(delay)
		d.to, d.from, d.payload = id, id, payload
		e.pushDelayed(d)
		return
	}
	e.deliverAfter(e.scale(delay), id, id, payload)
}

func (e *Engine) deliverAfter(delay time.Duration, to, from netsim.NodeID, payload any) {
	time.AfterFunc(delay, func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.closed || e.down[to] {
			return
		}
		if h, ok := e.handlers[to]; ok {
			h(from, payload)
		}
		e.drain()
	})
}

// Schedule runs fn under the engine lock after delay.
func (e *Engine) Schedule(d time.Duration, fn func()) {
	if e.direct {
		w := e.newDelayed()
		w.when = e.Now() + e.scale(d)
		w.fn = fn
		e.pushDelayed(w)
		return
	}
	time.AfterFunc(e.scale(d), func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.closed {
			return
		}
		fn()
		e.drain()
	})
}

// ScheduleStop schedules fn after delay and returns a stop function that
// cancels the timer (same cancelable-guard contract as the simulated
// transport). In direct mode both arming and canceling run under the
// engine lock (they always do: guards are armed and stopped inside Do
// blocks and handlers), and a guard canceled within the drain cycle
// that armed it never touches the wheel at all.
func (e *Engine) ScheduleStop(d time.Duration, fn func()) func() {
	if e.direct {
		w := e.newDelayed()
		w.when = e.Now() + e.scale(d)
		w.fn = fn
		gen := w.gen
		e.guards = append(e.guards, w)
		return func() {
			if w.gen == gen {
				w.stopped = true
			}
		}
	}
	t := time.AfterFunc(e.scale(d), func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.closed {
			return
		}
		fn()
		e.drain()
	})
	return func() { t.Stop() }
}

// Fail drops traffic to and from id (kv.Cluster's failure injection uses
// it through the failer interface). Like all cluster interactions it must
// run under the engine lock (inside Do or a handler).
func (e *Engine) Fail(id netsim.NodeID) { e.down[id] = true }

// Recover reverses Fail; same locking contract as Fail.
func (e *Engine) Recover(id netsim.NodeID) { delete(e.down, id) }

// Meter snapshots the traffic meter.
func (e *Engine) Meter() netsim.TrafficMeter {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.meter.Snapshot()
}

// Close stops delivering; in-flight timers become no-ops. A mesh
// engine additionally closes its peer connections and joins the
// reader/writer goroutines.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	if e.dtimer != nil {
		e.dtimer.Stop()
	}
	e.mu.Unlock()
	if e.mesh != nil {
		e.mesh.shutdown()
	}
}
