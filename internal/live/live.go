// Package live runs the same store nodes as the discrete-event simulator
// but over wall-clock time and goroutines: message delivery uses real
// timers, and a cluster-wide mutex serializes handler execution (node
// logic is written for serialized delivery). It exists to demonstrate —
// and race-test — that the adaptive middleware is engine-agnostic: the
// monitor, controllers and tuners run unchanged against a live cluster.
package live

import (
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// Engine implements kv.Network over real time.
type Engine struct {
	mu       sync.Mutex
	start    time.Time
	topo     *netsim.Topology
	rng      *stats.Source
	handlers map[netsim.NodeID]netsim.Handler
	meter    netsim.TrafficMeter
	down     map[netsim.NodeID]bool
	closed   bool

	// Scale compresses sampled network latencies (0.1 runs a WAN
	// topology ten times faster); 0 defaults to 1.
	Scale float64
}

// New returns a live engine over topo.
func New(topo *netsim.Topology, seed uint64) *Engine {
	return &Engine{
		start:    time.Now(),
		topo:     topo,
		rng:      stats.NewSource(seed).Stream("live"),
		handlers: make(map[netsim.NodeID]netsim.Handler),
		down:     make(map[netsim.NodeID]bool),
		Scale:    1,
	}
}

// Now reports time since engine start.
func (e *Engine) Now() time.Duration { return time.Since(e.start) }

// Register installs a node handler. It must run under the engine lock:
// cluster construction happens inside Do, so this does not lock itself
// (the mutex is not reentrant).
func (e *Engine) Register(id netsim.NodeID, h netsim.Handler) {
	e.handlers[id] = h
}

// Do runs fn holding the engine lock; external drivers (workloads, tests)
// use it to interact with cluster state safely.
func (e *Engine) Do(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn()
}

func (e *Engine) scale(d time.Duration) time.Duration {
	s := e.Scale
	if s <= 0 {
		s = 1
	}
	return time.Duration(float64(d) * s)
}

// Send delivers payload after a sampled network delay. The caller must
// hold the engine lock (it always does: sends originate inside handlers
// or Do blocks).
func (e *Engine) Send(from, to netsim.NodeID, payload any, size int) {
	class := e.topo.Class(from, to)
	e.meter.Count(class, size)
	if e.down[from] || e.down[to] {
		e.meter.Dropped++
		return
	}
	delay := e.scale(e.topo.Latency.Law(class).Sample(e.rng))
	e.deliverAfter(delay, to, from, payload)
}

// SendLocal schedules a self-message (timer) on id.
func (e *Engine) SendLocal(id netsim.NodeID, payload any, delay time.Duration) {
	e.deliverAfter(e.scale(delay), id, id, payload)
}

func (e *Engine) deliverAfter(delay time.Duration, to, from netsim.NodeID, payload any) {
	time.AfterFunc(delay, func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.closed || e.down[to] {
			return
		}
		if h, ok := e.handlers[to]; ok {
			h(from, payload)
		}
	})
}

// Schedule runs fn under the engine lock after delay.
func (e *Engine) Schedule(d time.Duration, fn func()) {
	time.AfterFunc(e.scale(d), func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.closed {
			return
		}
		fn()
	})
}

// ScheduleStop schedules fn after delay and returns a stop function that
// cancels the timer (same cancelable-guard contract as the simulated
// transport).
func (e *Engine) ScheduleStop(d time.Duration, fn func()) func() {
	t := time.AfterFunc(e.scale(d), func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.closed {
			return
		}
		fn()
	})
	return func() { t.Stop() }
}

// Fail drops traffic to and from id (kv.Cluster's failure injection uses
// it through the failer interface). Like all cluster interactions it must
// run under the engine lock (inside Do or a handler).
func (e *Engine) Fail(id netsim.NodeID) { e.down[id] = true }

// Recover reverses Fail; same locking contract as Fail.
func (e *Engine) Recover(id netsim.NodeID) { delete(e.down, id) }

// Meter snapshots the traffic meter.
func (e *Engine) Meter() netsim.TrafficMeter {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.meter.Snapshot()
}

// Close stops delivering; in-flight timers become no-ops.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
}
