package live

import (
	"time"

	"repro/internal/netsim"
)

// The direct-mode timer wheel. A serving workload arms two timers per
// client operation (the coordinator timeout and the client guard), and
// per-operation time.AfterFunc allocations plus runtime timer-heap
// traffic were the second-largest cost on the serving profile. Direct
// mode instead keeps one binary heap of pending events under the engine
// lock, serviced by a single re-armed runtime timer, with entries
// recycled through a free list. Guards get a further shortcut: they are
// staged per drain cycle and only pushed onto the heap if still armed
// when the drain finishes — an operation that completes synchronously
// (every operation, in a single-process deployment) cancels its guard
// before it ever touches the heap or the timer.

// delayed is one pending wheel event: a deferred self-message (payload)
// or a scheduled function (fn). gen guards recycled entries against
// stale cancel closures.
type delayed struct {
	when     time.Duration // engine-clock deadline
	seq      uint64        // FIFO tiebreak for equal deadlines
	to, from netsim.NodeID
	payload  any
	fn       func()
	stopped  bool
	gen      uint32
}

// newDelayed takes an entry from the free list. Engine lock held.
func (e *Engine) newDelayed() *delayed {
	if n := len(e.dfree); n > 0 {
		d := e.dfree[n-1]
		e.dfree = e.dfree[:n-1]
		return d
	}
	return &delayed{}
}

// recycle returns a fired or canceled entry to the free list,
// invalidating any outstanding cancel closure. Engine lock held.
func (e *Engine) recycle(d *delayed) {
	d.payload, d.fn, d.stopped = nil, nil, false
	d.gen++
	e.dfree = append(e.dfree, d)
}

// pushDelayed schedules one wheel event. The timer is re-armed at drain
// end (every lock path drains before unlocking), not here.
func (e *Engine) pushDelayed(d *delayed) {
	e.dseq++
	d.seq = e.dseq
	e.dheap = append(e.dheap, d)
	e.siftUp(len(e.dheap) - 1)
}

func (e *Engine) less(i, j int) bool {
	a, b := e.dheap[i], e.dheap[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.less(i, p) {
			return
		}
		e.dheap[i], e.dheap[p] = e.dheap[p], e.dheap[i]
		i = p
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.dheap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && e.less(l, m) {
			m = l
		}
		if r < n && e.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		e.dheap[i], e.dheap[m] = e.dheap[m], e.dheap[i]
		i = m
	}
}

// popDelayed removes the earliest event. Caller checked len > 0.
func (e *Engine) popDelayed() *delayed {
	d := e.dheap[0]
	n := len(e.dheap) - 1
	e.dheap[0] = e.dheap[n]
	e.dheap[n] = nil
	e.dheap = e.dheap[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return d
}

// flushGuards disposes of the guards staged during this drain cycle:
// already-stopped ones are recycled without ever touching the heap,
// survivors (operations still waiting on remote peers) are pushed.
func (e *Engine) flushGuards() {
	for i, d := range e.guards {
		e.guards[i] = nil
		if d.stopped {
			e.recycle(d)
			continue
		}
		e.pushDelayed(d)
	}
	e.guards = e.guards[:0]
}

// rearm points the wheel's single runtime timer at the earliest pending
// event. Engine lock held; called at drain end and after firing.
func (e *Engine) rearm() {
	if len(e.dheap) == 0 || e.closed {
		return
	}
	next := e.dheap[0].when
	if e.darmed && e.dwhen <= next {
		return
	}
	delay := next - e.Now()
	if delay < 0 {
		delay = 0
	}
	if e.dtimer == nil {
		e.dtimer = time.AfterFunc(delay, e.fireDelayed)
	} else {
		e.dtimer.Reset(delay)
	}
	e.darmed, e.dwhen = true, next
}

// fireDelayed is the wheel timer callback: it runs every due event and
// drains the resulting cascade, exactly like a deliverAfter callback.
func (e *Engine) fireDelayed() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.darmed = false
	if e.closed {
		return
	}
	now := e.Now()
	for len(e.dheap) > 0 && e.dheap[0].when <= now {
		d := e.popDelayed()
		if !d.stopped {
			if d.fn != nil {
				d.fn()
			} else {
				e.enqueue(d.to, d.from, d.payload)
			}
		}
		e.recycle(d)
	}
	e.drain()
}
