package live

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// The serving-mode engine: one OS process per subset of the ring,
// connected by a TCP mesh. Every process constructs the full cluster
// actor set (so ring placement, per-key routing and version ordering
// are computed identically everywhere), registers only its local nodes,
// and ships messages addressed to peer-owned nodes as wire frames:
// replica reads/writes, their acks, batches, anti-entropy exchanges and
// snapshot streams all cross process boundaries; client messages and
// self-messages never do (coordinator selection is pinned to local
// nodes via kv.Config.Coordinators).
//
// Delivery within a process uses the direct run queue rather than
// per-message timers: the thread holding the engine lock drains the
// queue before releasing it, preserving the serialized handler contract
// at a fraction of the cost. Outbound frames accumulate per peer while
// the lock is held and are handed to a per-peer writer goroutine in one
// batch at drain end — one wakeup and typically one syscall per
// pipeline's worth of traffic.

// MeshConfig describes one process of a multi-process cluster.
type MeshConfig struct {
	// Local lists the topology nodes this process serves; nil serves
	// all of them (single-process serving).
	Local []netsim.NodeID
	// Listen is the peer-mesh listen address (host:port); empty when
	// the deployment has a single process.
	Listen string
	// Peers maps every remote node id to its owner process's mesh
	// listen address.
	Peers map[netsim.NodeID]string
	// DialTimeout bounds how long to wait for peer processes to come
	// up (default 30s).
	DialTimeout time.Duration
}

// NewMesh returns a serving-mode engine: direct in-process delivery,
// wall-clock timers for real delays, and — when mc names peers — a TCP
// mesh to the processes serving the rest of the ring. The engine clock
// runs from the Unix epoch rather than process start, so coordinators
// in different processes issue comparable last-write-wins timestamps
// (skew is bounded by host clock sync; ties break on the per-process
// sequence, the usual wall-clock LWW contract).
func NewMesh(topo *netsim.Topology, seed uint64, mc MeshConfig) (*Engine, error) {
	e := New(topo, seed)
	e.start = time.Unix(0, 0)
	e.direct = true
	if len(mc.Local) > 0 {
		e.localSet = make([]bool, topo.N())
		for _, id := range mc.Local {
			if id < 0 || int(id) >= topo.N() {
				return nil, fmt.Errorf("live: local node %d outside topology (N=%d)", id, topo.N())
			}
			e.localSet[id] = true
		}
	}
	if mc.Listen == "" && len(mc.Peers) == 0 {
		return e, nil
	}
	m := &mesh{e: e, route: make(map[netsim.NodeID]*meshPeer, len(mc.Peers))}
	if mc.Listen != "" {
		ln, err := net.Listen("tcp", mc.Listen)
		if err != nil {
			return nil, fmt.Errorf("live: mesh listen: %w", err)
		}
		m.ln = ln
		m.wg.Add(1)
		go m.acceptLoop()
	}
	timeout := mc.DialTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	byAddr := make(map[string]*meshPeer)
	for id, addr := range mc.Peers {
		p := byAddr[addr]
		if p == nil {
			conn, err := dialRetry(addr, timeout)
			if err != nil {
				m.shutdown()
				return nil, fmt.Errorf("live: mesh dial %s: %w", addr, err)
			}
			p = newMeshPeer(addr, conn)
			byAddr[addr] = p
			m.peers = append(m.peers, p)
			m.wg.Add(1)
			go p.writeLoop(m)
		}
		m.route[id] = p
	}
	e.mesh = m
	return e, nil
}

// MeshAddr reports the engine's peer-mesh listen address ("" without a
// mesh listener) — tests bind port 0 and read the address back.
func (e *Engine) MeshAddr() string {
	if e.mesh == nil || e.mesh.ln == nil {
		return ""
	}
	return e.mesh.ln.Addr().String()
}

// mesh is the TCP fabric between serving processes.
type mesh struct {
	e     *Engine
	ln    net.Listener
	peers []*meshPeer
	route map[netsim.NodeID]*meshPeer
	wg    sync.WaitGroup

	connMu sync.Mutex
	conns  []net.Conn
}

// meshPeer is one outbound connection. pend stages frames under the
// engine lock; flushLocked moves them to out under the peer lock, and
// the writer goroutine ping-pongs out against alt so a slow peer never
// blocks the engine.
type meshPeer struct {
	addr string
	conn net.Conn

	pend []byte // staged frames; engine lock held

	mu     sync.Mutex
	cond   *sync.Cond
	out    []byte
	alt    []byte
	closed bool
}

func newMeshPeer(addr string, conn net.Conn) *meshPeer {
	p := &meshPeer{addr: addr, conn: conn}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// dialRetry dials addr until it answers or timeout elapses — peer
// processes of a cluster start in arbitrary order.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// send stages one message for its owner process. Caller holds the
// engine lock. Messages without a wire form must never be addressed to
// a remote node — that is a routing bug, not an I/O condition.
func (m *mesh) send(from, to netsim.NodeID, payload any) {
	p := m.route[to]
	if p == nil {
		m.e.meter.Dropped++
		return
	}
	var ok bool
	p.pend, ok = kv.MarshalMessage(p.pend, from, to, payload)
	if !ok {
		panic(fmt.Sprintf("live: message %T to remote node %d has no wire form", payload, to))
	}
}

// flushLocked hands staged frames to the peer writers. Caller holds
// the engine lock; peer locks are only ever taken inside it, never the
// reverse, so the order is deadlock-free.
func (m *mesh) flushLocked() {
	for _, p := range m.peers {
		if len(p.pend) == 0 {
			continue
		}
		p.mu.Lock()
		p.out = append(p.out, p.pend...)
		p.mu.Unlock()
		p.cond.Signal()
		p.pend = p.pend[:0]
	}
}

// writeLoop ships batches to one peer.
func (p *meshPeer) writeLoop(m *mesh) {
	defer m.wg.Done()
	for {
		p.mu.Lock()
		for len(p.out) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.out) == 0 {
			p.mu.Unlock()
			return
		}
		buf := p.out
		p.out = p.alt[:0]
		p.alt = buf
		p.mu.Unlock()
		if _, err := p.conn.Write(buf); err != nil {
			p.mu.Lock()
			p.closed = true
			p.out = p.out[:0]
			p.mu.Unlock()
			return
		}
	}
}

// acceptLoop admits inbound peer connections; frames identify their
// destination themselves, so inbound connections are read-only.
func (m *mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.connMu.Lock()
		m.conns = append(m.conns, conn)
		m.connMu.Unlock()
		m.wg.Add(1)
		go m.readLoop(conn)
	}
}

// readLoop decodes inbound frames and delivers each read's worth in
// one engine-lock acquisition.
func (m *mesh) readLoop(conn net.Conn) {
	defer m.wg.Done()
	defer conn.Close()
	buf := make([]byte, 64<<10)
	have := 0
	var batch []queuedMsg
	for {
		off := 0
		for {
			kind, body, n, err := wire.ReadFrame(buf[off:have])
			if err != nil {
				return // corrupt peer stream: drop the connection
			}
			if n == 0 {
				break
			}
			from, to, payload, derr := kv.UnmarshalMessage(kind, body)
			if derr != nil {
				return
			}
			batch = append(batch, queuedMsg{to: to, from: from, payload: payload})
			off += n
		}
		if len(batch) > 0 {
			m.e.deliverBatch(batch)
			batch = batch[:0]
		}
		if off > 0 {
			copy(buf, buf[off:have])
			have -= off
		} else if have == len(buf) {
			grown := make([]byte, len(buf)*2)
			copy(grown, buf[:have])
			buf = grown
		}
		n, err := conn.Read(buf[have:])
		have += n
		if n == 0 && err != nil {
			return
		}
	}
}

// deliverBatch runs a batch of inbound peer messages through the run
// queue under one lock acquisition.
func (e *Engine) deliverBatch(batch []queuedMsg) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	for _, q := range batch {
		e.enqueue(q.to, q.from, q.payload)
	}
	e.drain()
}

// shutdown closes the mesh and joins its goroutines. The engine lock is
// not held: readers blocked on it must be able to acquire it, observe
// closed, and exit.
func (m *mesh) shutdown() {
	if m.ln != nil {
		m.ln.Close()
	}
	for _, p := range m.peers {
		p.mu.Lock()
		p.closed = true
		p.out = p.out[:0]
		p.mu.Unlock()
		p.cond.Broadcast()
		p.conn.Close()
	}
	m.connMu.Lock()
	for _, c := range m.conns {
		c.Close()
	}
	m.connMu.Unlock()
	m.wg.Wait()
}
