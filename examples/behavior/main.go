// Behavior modeling (§III-C): collect an access trace from a day of
// synthetic application traffic whose character shifts over time, build
// the offline behaviour model (timeline → k-means states → policy
// rules), then replay a second day against the runtime classifier and
// watch it switch policies as the application moves between states.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

// dayPhases is the application's "day": overnight analytics reads, a
// morning mixed load, a lunchtime write burst with read-your-writes
// behaviour, and an evening read-mostly tail.
var dayPhases = []struct {
	name    string
	read    float64
	ops     uint64
	threads int
	records uint64
}{
	{"overnight analytics", 1.00, 9000, 24, 4000},
	{"morning traffic", 0.85, 12000, 48, 2000},
	{"lunchtime burst", 0.50, 15000, 96, 1000},
	{"evening browsing", 0.92, 9000, 32, 3000},
}

func main() {
	topo := repro.G5KTwoSites(12)
	cfg := repro.Defaults(topo)
	cfg.Seed = 11

	// Day 1: record the application's behaviour.
	sim := repro.NewSim(topo, cfg)
	collector := sim.CollectTrace(0)
	driveDay(sim.StaticClient(repro.One, repro.One), "day 1 (collection)")
	trace := collector.Trace()
	fmt.Printf("\ncollected %d operations over %v\n", len(trace.Ops), trace.Duration().Round(time.Millisecond))

	// Offline modeling: timeline → states → policies.
	tl := repro.BuildTimeline(trace, 200*time.Millisecond)
	model, err := repro.BuildBehaviorModel(tl, repro.DefaultBehaviorOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(model.Describe())

	// Day 2: the classifier drives consistency from the model.
	sim2 := repro.NewSim(topo, cfg)
	cli, ctl := sim2.BehaviorClient(model)
	fmt.Println("\nday 2 (classified), policies in force per phase:")
	for _, ph := range dayPhases {
		w := repro.MixWorkload(ph.records, ph.read, 0, 0.99)
		m, err := cli.Run(w, repro.RunOptions{Ops: ph.ops, Threads: ph.threads})
		if err != nil {
			log.Fatal(err)
		}
		j := ctl.Journal()
		policy := "?"
		if len(j) > 0 {
			policy = j[len(j)-1].Decision.Reason
		}
		fmt.Printf("  %-20s %6.0f ops/s  stale %.2f%%  %s\n",
			ph.name, m.Throughput(), 100*m.StaleRate(), policy)
	}
}

func driveDay(cli repro.Client, label string) {
	fmt.Printf("%s:\n", label)
	for _, ph := range dayPhases {
		w := repro.MixWorkload(ph.records, ph.read, 0, 0.99)
		m, err := cli.Run(w, repro.RunOptions{Ops: ph.ops, Threads: ph.threads})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %6.0f ops/s, %d ops\n", ph.name, m.Throughput(), m.Ops)
	}
}
