// Quickstart: build a simulated two-site cluster, see how consistency
// levels trade staleness for latency through the unified Client API,
// batch multi-key operations, and let Harmony pick levels automatically
// under a tolerated stale-read rate.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 12-node cluster across two Grid'5000-like sites, RF 3.
	topo := repro.G5KTwoSites(12)
	cfg := repro.Defaults(topo)
	cfg.Seed = 42
	sim := repro.NewSim(topo, cfg)
	ctx := context.Background()

	// One client serves both single and batched operations; per-op
	// options override the session's levels.
	cli := sim.StaticClient(repro.One, repro.One)
	w := cli.Put(ctx, "greeting", []byte("hello, cloud"))
	fmt.Printf("write at ONE     acked in %v (version %v)\n", w.Latency, w.Version)
	r := cli.Get(ctx, "greeting")
	fmt.Printf("read  at ONE     %q in %v (stale=%v)\n", r.Value, r.Latency, r.Stale)
	r = cli.Get(ctx, "greeting", repro.WithLevel(repro.Quorum))
	fmt.Printf("read  at QUORUM  %q in %v (stale=%v)\n", r.Value, r.Latency, r.Stale)
	r = cli.Get(ctx, "greeting", repro.WithLevel(repro.All))
	fmt.Printf("read  at ALL     %q in %v (stale=%v)\n", r.Value, r.Latency, r.Stale)

	// A multi-key batch costs one coordinator admission and one message
	// per replica — compare its latency with the single reads above.
	puts := make([]repro.PutOp, 8)
	for i := range puts {
		puts[i] = repro.PutOp{Key: fmt.Sprintf("item:%d", i), Value: []byte("v")}
	}
	bw := cli.BatchPut(ctx, puts)
	br := cli.BatchGet(ctx, []string{"item:0", "item:3", "item:7"})
	fmt.Printf("batch: 8 puts acked in one trip (%v), 3 gets in one trip (%q, %v)\n",
		bw[0].Latency, br[0].Value, br[0].Latency)

	// A heavy read-update workload under Harmony with ≤5% stale reads.
	hcli, ctl := sim.HarmonyClient(0.05)
	m, err := hcli.Run(repro.HeavyReadUpdate(2000), repro.RunOptions{Ops: 20000, Threads: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nharmony (α=5%%): %.0f ops/s, %.2f%% stale reads, read p95 %v\n",
		m.Throughput(), 100*m.StaleRate(), m.ReadLat.Quantile(0.95))
	fmt.Printf("consistency decisions taken: %d (level changes: %d)\n",
		len(ctl.Journal()), ctl.LevelChanges())
	for _, e := range ctl.Journal()[:min(5, len(ctl.Journal()))] {
		fmt.Printf("  t=%-8v read level %-5v — %s\n", e.At, e.Decision.ReadLevel, e.Decision.Reason)
	}
}
