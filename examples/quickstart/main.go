// Quickstart: build a simulated two-site cluster, see how consistency
// levels trade staleness for latency, and let Harmony pick levels
// automatically under a tolerated stale-read rate.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 12-node cluster across two Grid'5000-like sites, RF 3.
	topo := repro.G5KTwoSites(12)
	cfg := repro.Defaults(topo)
	cfg.Seed = 42
	sim := repro.NewSim(topo, cfg)

	// Single operations at explicit levels.
	w := sim.Write("greeting", []byte("hello, cloud"), repro.One)
	fmt.Printf("write at ONE     acked in %v (version %v)\n", w.Latency, w.Version)
	r := sim.Read("greeting", repro.One)
	fmt.Printf("read  at ONE     %q in %v (stale=%v)\n", r.Value, r.Latency, r.Stale)
	r = sim.Read("greeting", repro.Quorum)
	fmt.Printf("read  at QUORUM  %q in %v (stale=%v)\n", r.Value, r.Latency, r.Stale)
	r = sim.Read("greeting", repro.All)
	fmt.Printf("read  at ALL     %q in %v (stale=%v)\n", r.Value, r.Latency, r.Stale)

	// A heavy read-update workload under Harmony with ≤5% stale reads.
	sess, ctl := sim.HarmonySession(0.05)
	m, err := sim.RunWorkload(repro.HeavyReadUpdate(2000), sess, 20000, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nharmony (α=5%%): %.0f ops/s, %.2f%% stale reads, read p95 %v\n",
		m.Throughput(), 100*m.StaleRate(), m.ReadLat.Quantile(0.95))
	fmt.Printf("consistency decisions taken: %d (level changes: %d)\n",
		len(ctl.Journal()), ctl.LevelChanges())
	for _, e := range ctl.Journal()[:min(5, len(ctl.Journal()))] {
		fmt.Printf("  t=%-8v read level %-5v — %s\n", e.At, e.Decision.ReadLevel, e.Decision.Reason)
	}
}
