// Social network: the paper's high-tolerance application. Stale timeline
// reads are harmless, so the operator cares about the bill. The example
// compares a static QUORUM deployment against Bismar, which re-prices
// every consistency level at runtime and keeps the cheapest one whose
// consistency is still worth paying for.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	topo := repro.G5KTwoSites(20)
	cfg := repro.Defaults(topo)
	cfg.RF = 5
	cfg.Seed = 21

	dep := repro.Deployment{
		Nodes: 20, RF: 5, Threads: 200, Concurrency: cfg.Concurrency,
		ReadServiceMean:  800 * time.Microsecond,
		WriteServiceMean: 500 * time.Microsecond,
		CoordMean:        80 * time.Microsecond,
		ClientRTT:        time.Millisecond,
		ValueBytes:       1024,
		DatasetBytes:     8 << 30,
		CrossDCFraction:  0.5,
		Pricing:          repro.EC2Pricing2013(),
	}

	run := func(name string, tuner repro.Tuner) {
		sim := repro.NewSim(topo, cfg)
		sess, ctl := sim.AdaptiveSession(tuner, 250*time.Millisecond)
		cli := sim.Client(sess)
		w := repro.WorkloadB(5000) // read-mostly timeline traffic
		m, err := cli.Run(w, repro.RunOptions{Ops: 60000, Threads: 200})
		if err != nil {
			log.Fatal(err)
		}
		meter := sim.Transport.Meter()
		interDC, _ := meter.BilledBytes()
		// Bill with smooth (unrounded) instance time and normalize per
		// million operations so runs of different lengths compare.
		bill := repro.EC2Pricing2013().Smooth().BillFor(repro.Usage{
			Nodes: 20, Duration: m.Elapsed(),
			StoredBytes: 8 << 30 * 5, InterDCBytes: float64(interDC),
		})
		perM := bill.Total() / float64(m.Ops) * 1e6
		fmt.Printf("%-14s %6.0f ops/s  stale %.2f%%  level changes %-3d  $%.4f per M ops\n",
			name, m.Throughput(), 100*m.StaleRate(), ctl.LevelChanges(), perM)
	}

	fmt.Println("social network timeline service (read-mostly, staleness-tolerant)")
	run("static QUORUM", repro.NewStaticTuner(repro.Quorum, repro.Quorum))
	run("static ONE", repro.NewStaticTuner(repro.One, repro.One))
	run("bismar", repro.NewBismarTuner(dep))
}
