// Webshop: the paper's motivating low-tolerance application. Reading a
// stale cart or inventory row costs money, so the tolerated stale-read
// rate is 1%. The example drives a quiet phase, a flash-sale spike and a
// cool-down against Harmony, and shows the tuner escalating the read
// level only while the spike makes level ONE dangerous.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	topo := repro.EC2TwoAZ(12)
	cfg := repro.Defaults(topo)
	cfg.Seed = 7
	sim := repro.NewSim(topo, cfg)

	cli, ctl := sim.HarmonyClient(0.01) // webshop: at most 1% stale reads

	phases := []struct {
		name    string
		read    float64
		ops     uint64
		threads int
	}{
		{"quiet browsing", 0.95, 12000, 32},
		{"flash sale", 0.55, 30000, 160},
		{"cool-down", 0.90, 12000, 32},
	}

	fmt.Println("webshop under Harmony (tolerated stale reads: 1%)")
	for _, ph := range phases {
		w := repro.MixWorkload(3000, ph.read, 0, 0.99)
		m, err := cli.Run(w, repro.RunOptions{Ops: ph.ops, Threads: ph.threads})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %6.0f ops/s  stale %.2f%%  read p95 %-10v writes %.0f%%\n",
			ph.name, m.Throughput(), 100*m.StaleRate(), m.ReadLat.Quantile(0.95), 100*(1-ph.read))
	}

	fmt.Println("\nconsistency level over time:")
	last := ""
	for _, e := range ctl.Journal() {
		line := e.Decision.ReadLevel.String()
		if line != last {
			fmt.Printf("  t=%-10v → read level %-5s (est. stale %.2f%%)\n",
				e.At, line, 100*e.Decision.EstimatedStaleRate)
			last = line
		}
	}
	fmt.Printf("\noverall stale reads served: %.2f%% (ground truth)\n", 100*sim.StaleRate())
}
