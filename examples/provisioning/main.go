// Provisioning (§V future work): find the cheapest deployment that meets
// consistency, throughput and failure constraints, then validate the
// chosen plan in simulation.
package main

import (
	"fmt"
	"time"

	"repro/internal/provision"
)

func main() {
	catalog := provision.DefaultCatalog()
	workload := provision.Workload{
		OpsPerSecond: 6000,
		ReadFraction: 0.8,
		WriteRate:    25, // writes/s against a read's key
		BaseLatency:  2 * time.Millisecond,
	}

	fmt.Println("constraint sweep: cheapest feasible deployment per requirement")
	fmt.Printf("%-44s %s\n", "constraints", "plan")
	for _, c := range []provision.Constraints{
		{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 0.20, MinThroughput: 6000, FailureBudget: 0},
		{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 0.05, MinThroughput: 6000, FailureBudget: 0},
		{RF: 3, ReadLevel: 2, WriteLevel: 2, MaxStaleRate: 0.01, MinThroughput: 6000, FailureBudget: 1},
		{RF: 5, ReadLevel: 3, WriteLevel: 3, MaxStaleRate: 0.00, MinThroughput: 9000, FailureBudget: 2},
	} {
		best, considered := provision.Optimize(catalog, workload, c, 100)
		label := fmt.Sprintf("RF%d R%d/W%d stale≤%.0f%% thr≥%.0f fail≤%d",
			c.RF, c.ReadLevel, c.WriteLevel, 100*c.MaxStaleRate, c.MinThroughput, c.FailureBudget)
		if best.Feasible {
			fmt.Printf("%-44s %s\n", label, best.String())
		} else {
			fmt.Printf("%-44s no feasible plan in %d candidates\n", label, len(considered))
		}
	}

	// Show why cheaper plans were rejected for the strictest constraint.
	c := provision.Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1,
		MaxStaleRate: 0.05, MinThroughput: 6000, FailureBudget: 0}
	fmt.Print("\ncandidate ladder for the 5-percent staleness constraint (m1.large):\n")
	for n := 3; n <= 12; n++ {
		p := provision.Evaluate(catalog[1], n, workload, c)
		fmt.Printf("  %2d nodes: $%.2f/h  %-8s %s\n", n, p.HourlyCost,
			map[bool]string{true: "FEASIBLE", false: "rejected"}[p.Feasible], p.Reason)
	}
}
