// Live cluster: the same store and Harmony middleware running over wall
// clock and goroutines instead of the simulator — what embedding the
// library in a real service looks like. Latencies are compressed 10× so
// the demo finishes quickly.
package main

import (
	"fmt"
	"sync"
	"time"

	"repro"
)

func main() {
	topo := repro.EC2TwoAZ(8)
	cfg := repro.Defaults(topo)
	cfg.Seed = 5
	lv := repro.NewLive(topo, cfg, 0.1)
	defer lv.Close()

	// Blocking single operations.
	w := lv.Write("user:42", []byte(`{"name":"ada"}`), repro.Quorum)
	fmt.Printf("write QUORUM acked in %v\n", w.Latency)
	r := lv.Read("user:42", repro.One)
	fmt.Printf("read ONE returned %q in %v\n", r.Value, r.Latency)

	// An adaptive session under concurrent client goroutines.
	sess, ctl := lv.AdaptiveSession(repro.NewHarmonyTuner(0.10, cfg.RF), 100*time.Millisecond)
	var wg sync.WaitGroup
	var mu sync.Mutex
	stale, total := 0, 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				key := fmt.Sprintf("item:%d", (g*31+i)%64)
				if i%2 == 0 {
					sess.Write(key, []byte("v"))
				} else {
					res := sess.Read(key)
					mu.Lock()
					total++
					if res.Stale {
						stale++
					}
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()

	fmt.Printf("live adaptive run: %d reads, %.1f%% stale, %d control decisions\n",
		total, 100*float64(stale)/float64(max(total, 1)), len(ctl.Journal()))
}
