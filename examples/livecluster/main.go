// Live cluster: the same store and Harmony middleware running over wall
// clock and goroutines instead of the simulator — what embedding the
// library in a real service looks like. The unified Client API is
// identical to the simulated one; latencies are compressed 10× so the
// demo finishes quickly.
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro"
)

func main() {
	topo := repro.EC2TwoAZ(8)
	cfg := repro.Defaults(topo)
	cfg.Seed = 5
	lv := repro.NewLive(topo, cfg, 0.1)
	defer lv.Close()
	ctx := context.Background()

	// Blocking single operations through a level-pinned client.
	cli := lv.StaticClient(repro.One, repro.Quorum)
	w := cli.Put(ctx, "user:42", []byte(`{"name":"ada"}`))
	fmt.Printf("write QUORUM acked in %v\n", w.Latency)
	r := cli.Get(ctx, "user:42")
	fmt.Printf("read ONE returned %q in %v\n", r.Value, r.Latency)

	// A multi-key batch is one coordinated round trip, and a per-op
	// deadline bounds the client-visible wait.
	br := cli.BatchGet(ctx, []string{"user:42", "user:43"}, repro.WithDeadline(2*time.Second))
	fmt.Printf("batch get: %d results in %v\n", len(br), br[0].Latency)

	// An adaptive client shared by concurrent goroutines.
	acli, ctl := lv.HarmonyClient(0.10, 100*time.Millisecond)
	var wg sync.WaitGroup
	var mu sync.Mutex
	stale, total := 0, 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				key := fmt.Sprintf("item:%d", (g*31+i)%64)
				if i%2 == 0 {
					acli.Put(ctx, key, []byte("v"))
				} else {
					res := acli.Get(ctx, key)
					mu.Lock()
					total++
					if res.Stale {
						stale++
					}
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()

	fmt.Printf("live adaptive run: %d reads, %.1f%% stale, %d control decisions\n",
		total, 100*float64(stale)/float64(max(total, 1)), len(ctl.Journal()))
}
