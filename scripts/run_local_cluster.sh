#!/usr/bin/env bash
# run_local_cluster.sh — boot a 3-process storeserve cluster on localhost,
# smoke-test cross-coordinator SET/GET/MGET/DEL, and tear it down.
#
# Each process constructs the same 3-node ring (same topology/seed) and
# serves one node; replica traffic crosses the TCP mesh. Client commands
# are issued through *different* coordinators to prove the mesh carries
# quorum reads and writes, not just process-local state.
#
# Usage: scripts/run_local_cluster.sh [base-port]
set -euo pipefail

BASE=${1:-6400}
MESH_BASE=$((BASE + 1000))
BIN=$(mktemp -d)/storeserve
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

cd "$(dirname "$0")/.."
go build -o "$BIN" ./cmd/storeserve

peers_for() { # peers_for <self-id> -> "j=addr,..." for the other two
  local self=$1 out="" i
  for i in 0 1 2; do
    [ "$i" = "$self" ] && continue
    out="${out:+$out,}$i=127.0.0.1:$((MESH_BASE + i))"
  done
  echo "$out"
}

for i in 0 1 2; do
  "$BIN" \
    -listen "127.0.0.1:$((BASE + i))" \
    -mesh "127.0.0.1:$((MESH_BASE + i))" \
    -local "$i" \
    -peers "$(peers_for "$i")" \
    -topology single -nodes 3 -rf 3 -level QUORUM &
  PIDS+=($!)
done

cli() { # cli <node> CMD [args...]
  local node=$1
  shift
  "$BIN" -cli -addr "127.0.0.1:$((BASE + node))" "$@"
}

# Wait for all three front ends to accept commands.
for i in 0 1 2; do
  for _ in $(seq 1 50); do
    if cli "$i" PING >/dev/null 2>&1; then
      continue 2
    fi
    sleep 0.2
  done
  echo "node $i never came up" >&2
  exit 1
done

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

expect() { # expect <want> <node> CMD [args...]
  local want=$1 node=$2 got
  shift 2
  got=$(cli "$node" "$@")
  [ "$got" = "$want" ] || fail "via node $node: $* -> '$got', want '$want'"
}

# Write through one coordinator, read through the others: the value must
# cross the mesh both on the write quorum and the read quorum.
expect OK 0 SET smoke v1
expect v1 1 GET smoke
expect v1 2 GET smoke

# Overwrite from a different coordinator; last write wins everywhere.
expect OK 2 SET smoke v2
expect v2 0 GET smoke
expect v2 1 GET smoke

# Batch reads fan out across owners.
expect OK 0 SET mk1 a
expect OK 1 SET mk2 b
expect OK 2 SET mk3 c
got=$(cli 1 MGET mk1 mk2 mk3)
want=$(printf '1) a\n2) b\n3) c')
[ "$got" = "$want" ] || fail "MGET via node 1: '$got', want '$want'"

# Deletes propagate as tombstones.
expect "(integer) 1" 1 DEL smoke
expect "(nil)" 2 GET smoke

echo "local cluster smoke: OK (3 processes, base port $BASE)"
