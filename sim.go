package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// Sim is a fully wired simulated deployment: a deterministic
// discrete-event engine, a cluster of store nodes over a modeled network,
// and the Harmony monitoring module. All interaction happens in virtual
// time; runs with the same seed are bit-reproducible. Client-facing
// traffic goes through the unified Client API (Sim.Client and the
// session-flavored shorthands below).
type Sim struct {
	Engine    *sim.Engine
	Transport *netsim.Transport
	Cluster   *kv.Cluster
	Monitor   *monitor.Monitor

	controllers []*core.Controller
}

// NewSim builds a simulated deployment on topo.
func NewSim(topo *Topology, cfg Config) *Sim {
	eng := sim.New(cfg.Seed)
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	mon := monitor.New(cl.RF(), tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())
	return &Sim{Engine: eng, Transport: tr, Cluster: cl, Monitor: mon}
}

// Client wraps a session in the unified Client API. The client is
// single-threaded like the simulation itself: blocking calls and
// Future.Wait advance virtual time on the caller's goroutine.
func (s *Sim) Client(sess Session) Client { return &simClient{sim: s, sess: sess} }

// StaticClient returns a client pinned to fixed levels.
func (s *Sim) StaticClient(read, write Level) Client {
	return s.Client(s.StaticSession(read, write))
}

// HarmonyClient returns a client whose levels Harmony re-tunes to keep
// the stale-read rate under alpha, with the controller driving it.
func (s *Sim) HarmonyClient(alpha float64) (Client, *Controller) {
	sess, ctl := s.HarmonySession(alpha)
	return s.Client(sess), ctl
}

// HarmonyHotClient returns a client driven by the hot-key-aware Harmony
// tuner: the global per-key decision rules the tail while every key in
// the cluster's current hot set (Config.HotCache) is pinned to its own
// smallest safe level each control period.
func (s *Sim) HarmonyHotClient(alpha float64) (Client, *Controller) {
	sess, ctl := s.HarmonyHotSession(alpha)
	return s.Client(sess), ctl
}

// BismarClient returns a client whose levels Bismar re-prices for
// consistency-cost efficiency, with the controller driving it.
func (s *Sim) BismarClient(dep Deployment) (Client, *Controller) {
	sess, ctl := s.BismarSession(dep)
	return s.Client(sess), ctl
}

// BehaviorClient returns a client driven by a fitted behaviour model's
// runtime classifier, with the controller driving it.
func (s *Sim) BehaviorClient(m *BehaviorModel) (Client, *Controller) {
	sess, ctl := s.BehaviorSession(m)
	return s.Client(sess), ctl
}

// StaticSession returns a session pinned to fixed levels.
func (s *Sim) StaticSession(read, write Level) Session {
	return kv.StaticSession{Cluster: s.Cluster, ReadLevel: read, WriteLevel: write}
}

// AdaptiveSession wires a tuner into a controller (re-evaluating every
// interval; 0 means 100 ms of virtual time) and returns the adaptive
// session with its controller. The controller starts on the first engine
// step.
func (s *Sim) AdaptiveSession(t Tuner, interval time.Duration) (Session, *Controller) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ctl := core.NewController(s.Monitor, t, s.Transport, interval)
	s.controllers = append(s.controllers, ctl)
	ctl.Start()
	return ctl.Session(s.Cluster), ctl
}

// HarmonySession is shorthand for AdaptiveSession(NewHarmonyTuner(alpha, RF)).
func (s *Sim) HarmonySession(alpha float64) (Session, *Controller) {
	return s.AdaptiveSession(NewHarmonyTuner(alpha, s.Cluster.RF()), 0)
}

// HarmonyHotSession is shorthand for
// AdaptiveSession(NewHarmonyHotTuner(alpha, Cluster)).
func (s *Sim) HarmonyHotSession(alpha float64) (Session, *Controller) {
	return s.AdaptiveSession(NewHarmonyHotTuner(alpha, s.Cluster), 0)
}

// HotKeys reports the cluster's current hot set in sorted order (empty
// without Config.HotCache).
func (s *Sim) HotKeys() []string { return s.Cluster.HotKeys() }

// BismarSession is shorthand for AdaptiveSession(NewBismarTuner(dep)).
func (s *Sim) BismarSession(dep Deployment) (Session, *Controller) {
	return s.AdaptiveSession(NewBismarTuner(dep), 0)
}

// BehaviorSession runs a fitted behaviour model's runtime classifier as
// the tuner, wiring the classifier's feature hooks into the cluster.
func (s *Sim) BehaviorSession(m *BehaviorModel) (Session, *Controller) {
	rc := behavior.NewRuntimeClassifier(m, s.Cluster.RF())
	s.Cluster.AddHooks(rc.Hooks())
	return s.AdaptiveSession(rc, 0)
}

// CollectTrace records an access trace of everything the cluster serves
// while the simulation runs (§III-C's collection step).
func (s *Sim) CollectTrace(limit int) *behavior.Collector {
	col := behavior.NewCollector(limit)
	s.Cluster.AddHooks(col.Hooks())
	return col
}

// Preload seeds records into every replica (the YCSB load phase).
func (s *Sim) Preload(n uint64, key func(uint64) string, value []byte) {
	s.Cluster.Preload(n, key, value)
}

// Join adds topology node id to the cluster: it bootstraps by snapshot
// streaming the ranges it will own from current members, the placement
// flips when streaming completes, and the node warms up before read
// coordinators count it as fully live. Drive the simulation (Run) for
// the change to make progress.
func (s *Sim) Join(id NodeID) { s.Cluster.Join(id) }

// Decommission removes member id: it streams its ownership to the new
// owners, then leaves the ring. Drive the simulation for the change to
// make progress.
func (s *Sim) Decommission(id NodeID) { s.Cluster.Decommission(id) }

// Members returns the current ring members.
func (s *Sim) Members() []NodeID { return s.Cluster.Members() }

// State reports a node's combined membership/failure state.
func (s *Sim) State(id NodeID) NodeState { return s.Cluster.State(id) }

// Autoscale starts the cost-loop controller: it samples the monitor
// every cfg.Interval, feeds the observed workload to the provisioning
// optimizer and enacts the recommended cluster size through
// Join/Decommission — one membership change at a time, with hysteresis,
// cooldown, an RF+FailureBudget floor and billing-boundary-aware
// scale-down. Candidates defaults to every topology node. Inspect the
// controller's Log for the decision journal; Stop it to freeze the
// cluster size.
func (s *Sim) Autoscale(cfg AutoscaleConfig) *Autoscaler {
	if cfg.Candidates == nil {
		cfg.Candidates = s.Cluster.Topology().Nodes()
	}
	ctl := autoscale.New(s.Cluster, s.Monitor, s.Transport, cfg)
	ctl.Start()
	return ctl
}

// ViewAgreement reports the fraction of reachable members whose gossip
// view has applied the full membership-event log (always 1 when
// Config.Gossip is off — atomic placement cannot disagree).
func (s *Sim) ViewAgreement() float64 { return s.Cluster.ViewAgreement() }

// MembershipConverged reports whether every reachable member's view
// agrees with the enacted membership (ViewAgreement == 1).
func (s *Sim) MembershipConverged() bool { return s.Cluster.MembershipConverged() }

// Run advances virtual time by d.
func (s *Sim) Run(d time.Duration) { s.Engine.RunFor(d) }

// Now reports current virtual time.
func (s *Sim) Now() time.Duration { return s.Engine.Now() }

// StaleRate reports the oracle's measured stale-read fraction so far.
func (s *Sim) StaleRate() float64 { return s.Cluster.Oracle().StaleRate() }

// simClient implements Client over the discrete-event engine.
type simClient struct {
	sim  *Sim
	sess Session
}

func (c *simClient) Session() Session { return c.sess }

func (c *simClient) pump() bool { return c.sim.Engine.Step() }

// armDeadline schedules a virtual-time deadline that resolves the
// operation with ErrDeadline if it fires first.
func (c *simClient) armDeadline(d time.Duration, fail func()) {
	if d > 0 {
		c.sim.Transport.Schedule(d, fail)
	}
}

func (c *simClient) Get(ctx context.Context, key string, opts ...OpOption) ReadResult {
	return c.GetAsync(ctx, key, opts...).Wait(ctx)
}

func (c *simClient) Put(ctx context.Context, key string, value []byte, opts ...OpOption) WriteResult {
	return c.PutAsync(ctx, key, value, opts...).Wait(ctx)
}

func (c *simClient) Delete(ctx context.Context, key string, opts ...OpOption) WriteResult {
	return c.DeleteAsync(ctx, key, opts...).Wait(ctx)
}

func (c *simClient) BatchGet(ctx context.Context, keys []string, opts ...OpOption) []ReadResult {
	return c.BatchGetAsync(ctx, keys, opts...).Wait(ctx)
}

func (c *simClient) BatchPut(ctx context.Context, ops []PutOp, opts ...OpOption) []WriteResult {
	return c.BatchPutAsync(ctx, ops, opts...).Wait(ctx)
}

func (c *simClient) GetAsync(ctx context.Context, key string, opts ...OpOption) *ReadFuture {
	o := resolveOpts(opts)
	f := newFuture(c.pump, func(err error) ReadResult { return ReadResult{Err: err, Key: key} })
	if ctx.Err() != nil {
		f.resolve(ReadResult{Err: ErrCanceled, Key: key})
		return f
	}
	if o.level != nil {
		c.sim.Cluster.Read(key, *o.level, f.resolve)
	} else {
		c.sess.Read(key, f.resolve)
	}
	c.armDeadline(o.deadline, func() { f.resolve(ReadResult{Err: ErrDeadline, Key: key}) })
	return f
}

func (c *simClient) PutAsync(ctx context.Context, key string, value []byte, opts ...OpOption) *WriteFuture {
	o := resolveOpts(opts)
	f := newFuture(c.pump, func(err error) WriteResult { return WriteResult{Err: err, Key: key} })
	if ctx.Err() != nil {
		f.resolve(WriteResult{Err: ErrCanceled, Key: key})
		return f
	}
	if o.level != nil {
		c.sim.Cluster.Write(key, value, *o.level, f.resolve)
	} else {
		c.sess.Write(key, value, f.resolve)
	}
	c.armDeadline(o.deadline, func() { f.resolve(WriteResult{Err: ErrDeadline, Key: key}) })
	return f
}

func (c *simClient) DeleteAsync(ctx context.Context, key string, opts ...OpOption) *WriteFuture {
	o := resolveOpts(opts)
	f := newFuture(c.pump, func(err error) WriteResult { return WriteResult{Err: err, Key: key} })
	if ctx.Err() != nil {
		f.resolve(WriteResult{Err: ErrCanceled, Key: key})
		return f
	}
	if o.level != nil {
		c.sim.Cluster.Delete(key, *o.level, f.resolve)
	} else {
		c.sess.Delete(key, f.resolve)
	}
	c.armDeadline(o.deadline, func() { f.resolve(WriteResult{Err: ErrDeadline, Key: key}) })
	return f
}

func (c *simClient) BatchGetAsync(ctx context.Context, keys []string, opts ...OpOption) *BatchGetFuture {
	o := resolveOpts(opts)
	f := newFuture(c.pump, func(err error) []ReadResult { return failedBatchReads(keys, err) })
	if ctx.Err() != nil {
		f.resolve(failedBatchReads(keys, ErrCanceled))
		return f
	}
	if o.level != nil {
		c.sim.Cluster.ReadBatch(keys, *o.level, f.resolve)
	} else {
		c.sess.BatchRead(keys, f.resolve)
	}
	c.armDeadline(o.deadline, func() { f.resolve(failedBatchReads(keys, ErrDeadline)) })
	return f
}

func (c *simClient) BatchPutAsync(ctx context.Context, ops []PutOp, opts ...OpOption) *BatchPutFuture {
	o := resolveOpts(opts)
	f := newFuture(c.pump, func(err error) []WriteResult { return failedBatchWrites(ops, err) })
	if ctx.Err() != nil {
		f.resolve(failedBatchWrites(ops, ErrCanceled))
		return f
	}
	if o.level != nil {
		c.sim.Cluster.WriteBatch(ops, *o.level, f.resolve)
	} else {
		c.sess.BatchWrite(ops, f.resolve)
	}
	c.armDeadline(o.deadline, func() { f.resolve(failedBatchWrites(ops, ErrDeadline)) })
	return f
}

// Run drives a workload to completion in virtual time.
func (c *simClient) Run(w Workload, o RunOptions) (*Metrics, error) {
	r, err := ycsb.NewRunner(c.sess, w, c.sim.Transport, c.sim.Cluster.Config().Seed)
	if err != nil {
		return nil, err
	}
	applyRunOptions(r, o)
	if !o.NoPreload {
		c.sim.Preload(w.RecordCount, r.Keys, r.Value())
	}
	r.Start()
	for !r.Finished() && c.sim.Engine.Step() {
	}
	if !r.Finished() {
		return nil, fmt.Errorf("repro: workload stalled with %d events pending", c.sim.Engine.Pending())
	}
	return r.Metrics(), nil
}

// applyRunOptions maps RunOptions onto a runner.
func applyRunOptions(r *ycsb.Runner, o RunOptions) {
	if o.Ops > 0 {
		r.OpCount = o.Ops
	}
	if o.Threads > 0 {
		r.Threads = o.Threads
	}
	r.BatchSize = o.BatchSize
	r.WarmupOps = o.WarmupOps
	r.OpenLoopRate = o.OpenLoopRate
}
