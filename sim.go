package repro

import (
	"fmt"
	"time"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// Sim is a fully wired simulated deployment: a deterministic
// discrete-event engine, a cluster of store nodes over a modeled network,
// and the Harmony monitoring module. All interaction happens in virtual
// time; runs with the same seed are bit-reproducible.
type Sim struct {
	Engine    *sim.Engine
	Transport *netsim.Transport
	Cluster   *kv.Cluster
	Monitor   *monitor.Monitor

	controllers []*core.Controller
}

// NewSim builds a simulated deployment on topo.
func NewSim(topo *Topology, cfg Config) *Sim {
	eng := sim.New(cfg.Seed)
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	mon := monitor.New(cl.RF(), tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())
	return &Sim{Engine: eng, Transport: tr, Cluster: cl, Monitor: mon}
}

// StaticSession returns a session pinned to fixed levels.
func (s *Sim) StaticSession(read, write Level) Session {
	return kv.StaticSession{Cluster: s.Cluster, ReadLevel: read, WriteLevel: write}
}

// AdaptiveSession wires a tuner into a controller (re-evaluating every
// interval; 0 means 100 ms of virtual time) and returns the adaptive
// session with its controller. The controller starts on the first engine
// step.
func (s *Sim) AdaptiveSession(t Tuner, interval time.Duration) (Session, *Controller) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ctl := core.NewController(s.Monitor, t, s.Transport, interval)
	s.controllers = append(s.controllers, ctl)
	ctl.Start()
	return ctl.Session(s.Cluster), ctl
}

// HarmonySession is shorthand for AdaptiveSession(NewHarmonyTuner(alpha, RF)).
func (s *Sim) HarmonySession(alpha float64) (Session, *Controller) {
	return s.AdaptiveSession(NewHarmonyTuner(alpha, s.Cluster.RF()), 0)
}

// BismarSession is shorthand for AdaptiveSession(NewBismarTuner(dep)).
func (s *Sim) BismarSession(dep Deployment) (Session, *Controller) {
	return s.AdaptiveSession(NewBismarTuner(dep), 0)
}

// BehaviorSession runs a fitted behaviour model's runtime classifier as
// the tuner, wiring the classifier's feature hooks into the cluster.
func (s *Sim) BehaviorSession(m *BehaviorModel) (Session, *Controller) {
	rc := behavior.NewRuntimeClassifier(m, s.Cluster.RF())
	s.Cluster.AddHooks(rc.Hooks())
	return s.AdaptiveSession(rc, 0)
}

// CollectTrace records an access trace of everything the cluster serves
// while the simulation runs (§III-C's collection step).
func (s *Sim) CollectTrace(limit int) *behavior.Collector {
	col := behavior.NewCollector(limit)
	s.Cluster.AddHooks(col.Hooks())
	return col
}

// Preload seeds records into every replica (the YCSB load phase).
func (s *Sim) Preload(n uint64, key func(uint64) string, value []byte) {
	s.Cluster.Preload(n, key, value)
}

// RunWorkload drives a workload against a session to completion and
// returns its metrics.
func (s *Sim) RunWorkload(w Workload, sess Session, ops uint64, threads int) (*Metrics, error) {
	r, err := ycsb.NewRunner(sess, w, s.Transport, s.Cluster.Config().Seed)
	if err != nil {
		return nil, err
	}
	r.OpCount = ops
	r.Threads = threads
	s.Preload(w.RecordCount, r.Keys, r.Value())
	r.Start()
	for !r.Finished() && s.Engine.Step() {
	}
	if !r.Finished() {
		return nil, fmt.Errorf("repro: workload stalled with %d events pending", s.Engine.Pending())
	}
	return r.Metrics(), nil
}

// Run advances virtual time by d.
func (s *Sim) Run(d time.Duration) { s.Engine.RunFor(d) }

// Now reports current virtual time.
func (s *Sim) Now() time.Duration { return s.Engine.Now() }

// Read issues a read and runs the simulation until it completes.
func (s *Sim) Read(key string, lvl Level) ReadResult {
	var out ReadResult
	done := false
	s.Cluster.Read(key, lvl, func(r ReadResult) { out = r; done = true })
	for !done && s.Engine.Step() {
	}
	return out
}

// Write issues a write and runs the simulation until it completes.
func (s *Sim) Write(key string, value []byte, lvl Level) WriteResult {
	var out WriteResult
	done := false
	s.Cluster.Write(key, value, lvl, func(r WriteResult) { out = r; done = true })
	for !done && s.Engine.Step() {
	}
	return out
}

// StaleRate reports the oracle's measured stale-read fraction so far.
func (s *Sim) StaleRate() float64 { return s.Cluster.Oracle().StaleRate() }
