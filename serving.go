package repro

import (
	"fmt"
	"time"

	"repro/internal/kv"
	"repro/internal/live"
	"repro/internal/monitor"
	"repro/internal/netsim"
)

// ServeConfig describes one process of a serving deployment: which ring
// nodes it owns, where its peer mesh listens, and where the peers are.
// A single-process deployment leaves everything zero. See NewServing.
type ServeConfig struct {
	// Local lists the topology nodes this process serves; nil serves
	// all of them. Client operations issued in this process are
	// coordinated by these nodes only (client messages carry callbacks
	// and cannot cross processes), so every serving process is a full
	// coordinator for its share of the traffic.
	Local []NodeID
	// MeshListen is this process's peer-mesh listen address
	// (host:port; empty in a single-process deployment).
	MeshListen string
	// Peers maps each remote node id to the mesh address of the
	// process serving it.
	Peers map[NodeID]string
	// DialTimeout bounds the wait for peer processes at startup
	// (default 30s).
	DialTimeout time.Duration
}

// NewServing builds a serving deployment: the same Live store, but on
// the direct-delivery engine (no per-message timers) with an optional
// TCP mesh to the processes serving the rest of the ring. N processes
// constructed over the same topology, seed and Config form one cluster:
// every process computes the identical ring, coordinates operations on
// its local nodes, and exchanges replica traffic with its peers as
// framed binary messages (internal/wire). Gossip membership is not yet
// supported across processes — membership is the static
// InitialMembers/founders set.
func NewServing(topo *Topology, cfg Config, sc ServeConfig) (*Live, error) {
	if cfg.Gossip && (sc.MeshListen != "" || len(sc.Peers) > 0) {
		return nil, fmt.Errorf("repro: gossip membership is not supported across processes yet")
	}
	if len(sc.Local) > 0 {
		cfg.Coordinators = append([]NodeID(nil), sc.Local...)
	}
	eng, err := live.NewMesh(topo, cfg.Seed, live.MeshConfig{
		Local:       sc.Local,
		Listen:      sc.MeshListen,
		Peers:       sc.Peers,
		DialTimeout: sc.DialTimeout,
	})
	if err != nil {
		return nil, err
	}
	var cl *kv.Cluster
	var mon *monitor.Monitor
	eng.Do(func() {
		cl = kv.New(topo, eng, cfg)
		mon = monitor.New(cl.RF(), eng, monitor.DefaultOptions())
		cl.AddHooks(mon.Hooks())
	})
	return &Live{Engine: eng, Cluster: cl, Monitor: mon}, nil
}

// ServingDefaults returns a serving-tuned configuration: modeled
// service-time laws are zeroed (a serving node's cost is the real CPU
// it burns, not a sampled delay), so the request path is bounded by
// actual work rather than simulated Cassandra latencies.
func ServingDefaults(topo *Topology) Config {
	cfg := Defaults(topo)
	cfg.ReadService = netsim.Constant(0)
	cfg.WriteService = netsim.Constant(0)
	cfg.CoordOverhead = netsim.Constant(0)
	return cfg
}
