package repro

import (
	"fmt"
	"strings"

	"repro/internal/storage"
)

// Shared flag→Config plumbing for the cmds (storesim, storeserve) and
// any embedding program: every command used to carry its own copy of
// the level parser and the topology/engine switches; they live here
// once instead.

// EngineKind selects a per-node storage engine (EngineMem, EngineLSM).
type EngineKind = storage.Kind

// ParseLevel parses a consistency level name: ONE, TWO, THREE, QUORUM,
// ALL, LOCAL_QUORUM, EACH_QUORUM or K(n). Case-insensitive.
func ParseLevel(s string) (Level, error) {
	switch strings.ToUpper(s) {
	case "ONE":
		return One, nil
	case "TWO":
		return Two, nil
	case "THREE":
		return Three, nil
	case "QUORUM":
		return Quorum, nil
	case "ALL":
		return All, nil
	case "LOCAL_QUORUM":
		return LocalQuorum, nil
	case "EACH_QUORUM":
		return EachQuorum, nil
	}
	var k int
	if _, err := fmt.Sscanf(strings.ToUpper(s), "K(%d)", &k); err == nil && k > 0 {
		return Count(k), nil
	}
	return Level{}, fmt.Errorf("repro: unknown consistency level %q", s)
}

// ParseTopology builds a preset topology by name: "g5k" (two Grid'5000
// sites), "ec2" (two us-east-1 AZs), "single" (one datacenter) or
// "geo" (three regions; n is split across them).
func ParseTopology(name string, n int) (*Topology, error) {
	switch name {
	case "g5k":
		return G5KTwoSites(n), nil
	case "ec2":
		return EC2TwoAZ(n), nil
	case "single":
		return SingleDC(n), nil
	case "geo":
		return GeoRegions(n/3, "us-east", "eu-west", "ap-south"), nil
	}
	return nil, fmt.Errorf("repro: unknown topology %q", name)
}

// ParseEngine maps an engine name ("mem", "lsm") to its storage kind.
func ParseEngine(name string) (EngineKind, error) {
	switch name {
	case "mem":
		return EngineMem, nil
	case "lsm":
		return EngineLSM, nil
	}
	return EngineMem, fmt.Errorf("repro: unknown engine %q", name)
}

// ClientSpec is a parsed -level flag: either a fixed consistency level
// for both reads and writes, or the Harmony adaptive tuner with a
// stale-read tolerance.
type ClientSpec struct {
	Harmony bool
	Alpha   float64 // Harmony stale-read tolerance
	Level   Level   // fixed read+write level when !Harmony
}

// ParseClientSpec parses a level-or-tuner flag value: a level name
// (see ParseLevel) or "harmony:<alpha>".
func ParseClientSpec(s string) (ClientSpec, error) {
	if alphaStr, ok := strings.CutPrefix(s, "harmony:"); ok {
		var alpha float64
		if _, err := fmt.Sscanf(alphaStr, "%f", &alpha); err != nil {
			return ClientSpec{}, fmt.Errorf("repro: bad harmony tolerance %q", alphaStr)
		}
		return ClientSpec{Harmony: true, Alpha: alpha}, nil
	}
	lvl, err := ParseLevel(s)
	if err != nil {
		return ClientSpec{}, err
	}
	return ClientSpec{Level: lvl}, nil
}
