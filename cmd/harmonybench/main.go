// Command harmonybench regenerates the paper's §IV-A evaluation: Harmony
// against static eventual and strong consistency on the EC2 and Grid'5000
// platform presets, plus the Figure-1 model validation.
//
// Paper-scale operation counts run in virtual time but still take a
// while; -scale trades fidelity for speed (benches use 0.008).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	platform := flag.String("platform", "g5k", "platform preset: g5k (84 nodes) or ec2 (20 VMs)")
	scale := flag.Float64("scale", 0.02, "operation/record scale factor (1 = paper scale)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	tolStr := flag.String("tolerances", "", "comma-separated tolerated stale rates (default: paper's per-platform values)")
	validate := flag.Bool("validate", false, "run the Figure-1 model validation instead")
	flag.Parse()

	if *validate {
		_, table := experiments.RunFig1Validation(*seed)
		table.Render(os.Stdout)
		return
	}

	var p experiments.Platform
	var tolerances []float64
	switch *platform {
	case "g5k":
		p = experiments.G5KHarmony()
		tolerances = []float64{0.20, 0.40}
	case "ec2":
		p = experiments.EC2Harmony()
		tolerances = []float64{0.40, 0.60}
	default:
		fmt.Fprintf(os.Stderr, "unknown platform %q (want g5k or ec2)\n", *platform)
		os.Exit(2)
	}
	if *tolStr != "" {
		tolerances = nil
		for _, s := range strings.Split(*tolStr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad tolerance %q: %v\n", s, err)
				os.Exit(2)
			}
			tolerances = append(tolerances, v)
		}
	}

	p = p.Scaled(*scale)
	fmt.Printf("platform %s: %d nodes, RF %d, %d ops, %d client threads (scale %.3f)\n",
		p.Name, p.Nodes, p.RF, p.Ops, p.Threads, *scale)
	_, table := experiments.RunExpA(p, tolerances, *seed)
	table.Render(os.Stdout)
}
