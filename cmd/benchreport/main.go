// Command benchreport runs the simulator's performance suite — the
// micro-benchmarks of the discrete-event core, the storage engines, the
// hot-key coordinator read cache (cached single-ack reads and the full
// Zipfian mix), the membership layer (ring rebalance, snapshot
// streaming, gossip probe rounds, the stale-ring wrong-owner retry),
// the autoscale decision loop, the serving-layer codecs (RESP
// command decode/encode, the inter-process wire round trip) and the
// range-addressed rebalance path (movement planning, range-bounded
// snapshot streaming), plus an end-to-end experiment run and a
// whole-repo repolint pass — and writes the numbers as JSON so the
// performance trajectory is tracked in-repo (BENCH_PR10.json). CI runs
// it on every push and uploads the file as an artifact.
//
// Usage:
//
//	go run ./cmd/benchreport [-o BENCH_PR10.json] [-quick] [-baseline old.json]
//
// -quick shortens the measurement windows (CI smoke); -baseline embeds a
// previously captured report under "baseline" so before/after travels in
// one file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
	"repro/internal/autoscale"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/provision"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/wire"
)

// benchScale mirrors the root bench_test.go perf-tracking scale: the
// end-to-end numbers here and BenchmarkExpAHarmony measure the same run.
const benchScale = 0.004

// Bench is one micro-benchmark measurement.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  uint64  `json:"iterations"`
}

// Experiment is one end-to-end experiment measurement.
type Experiment struct {
	Name         string  `json:"name"`
	WallSeconds  float64 `json:"wall_seconds"`
	VirtualOps   uint64  `json:"virtual_ops"`
	VopsPerSec   float64 `json:"vops_per_sec"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Throughput   float64 `json:"virtual_throughput_ops_s"`
	StaleRate    float64 `json:"stale_rate"`
}

// Tool is one developer-tooling wall-time measurement.
type Tool struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Packages    int     `json:"packages"`
	Findings    int     `json:"findings"`
}

// Report is the benchreport output schema.
type Report struct {
	GeneratedBy string       `json:"generated_by"`
	GoVersion   string       `json:"go_version"`
	Gomaxprocs  int          `json:"gomaxprocs"`
	Scale       float64      `json:"bench_scale"`
	Benchmarks  []Bench      `json:"benchmarks"`
	Experiments []Experiment `json:"experiments"`
	Tools       []Tool       `json:"tools,omitempty"`
	// Notes records harness verdicts that travel with the numbers —
	// methodology changes, explained regressions, caveats.
	Notes    []string `json:"notes,omitempty"`
	Baseline *Report  `json:"baseline,omitempty"`
}

// measure calibrates iterations until the body runs for at least target,
// then re-runs the calibrated round twice more and reports the fastest of
// the three — a single round is one sample of a noisy machine, and the
// minimum is the estimate least disturbed by ambient scheduling. The body
// receives the iteration count and must execute its operation exactly
// that many times.
func measure(name string, target time.Duration, body func(n uint64)) Bench {
	var n uint64 = 1
	for {
		elapsed, allocs := measureRound(body, n)
		if elapsed >= target || n >= 1<<32 {
			for round := 0; round < 2; round++ {
				if e, a := measureRound(body, n); e < elapsed {
					elapsed, allocs = e, a
				}
			}
			return Bench{
				Name:        name,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(allocs) / float64(n),
				Iterations:  n,
			}
		}
		// Grow toward the target with headroom, capped at 100× per round.
		grow := uint64(float64(target)/float64(elapsed+1)*1.2) + 1
		if grow > 100 {
			grow = 100
		}
		n *= grow
	}
}

// measureRound times one body(n) invocation behind a fresh GC.
func measureRound(body func(n uint64), n uint64) (time.Duration, uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	body(n)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs
}

func benchEngineSchedule(target time.Duration) Bench {
	eng := sim.New(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		eng.Schedule(time.Hour+time.Duration(i)*time.Microsecond, fn)
	}
	return measure("EngineSchedule", target, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			eng.Schedule(time.Microsecond, fn)
			eng.Step()
		}
	})
}

func benchTransportSend(target time.Duration) Bench {
	eng := sim.New(1)
	topo := netsim.SingleDC(8)
	tr := netsim.NewTransport(eng, topo)
	sink := func(from netsim.NodeID, payload any) {}
	for _, id := range topo.Nodes() {
		tr.Register(id, sink)
	}
	payload := &struct{ a, b uint64 }{1, 2}
	return measure("TransportSend", target, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			tr.Send(0, 1, payload, 128)
			eng.Step()
		}
	})
}

func benchKVReadQuorum(target time.Duration) Bench {
	topo := netsim.SingleDC(6)
	cfg := kv.DefaultConfig()
	cfg.Seed = 1
	eng := sim.New(cfg.Seed)
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	const records = 1024
	key := func(i uint64) string { return fmt.Sprintf("user%012d", i) }
	cl.Preload(records, key, make([]byte, 128))
	keys := make([]string, records)
	for i := range keys {
		keys[i] = key(uint64(i))
	}
	// One callback for the whole bench: the harness must not charge its
	// own closure allocations to the client path it is measuring.
	done := false
	cb := func(kv.ReadResult) { done = true }
	return measure("KVReadQuorum", target, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			done = false
			cl.Read(keys[i%records], kv.Quorum, cb)
			for !done && eng.Step() {
			}
			if !done {
				// Mirror BenchmarkKVReadQuorum's stall check: a garbage
				// report must never look like a healthy artifact.
				panic("benchreport: quorum read stalled")
			}
		}
	})
}

// benchHotKeyCachedRead measures a single-ack read of a tracked hot key
// served from the coordinator read cache (PR 8): the coordinator answers
// from its own entry, no replica message is sent. Compare against
// KVReadQuorum for what the cache shaves off the hot path.
func benchHotKeyCachedRead(target time.Duration) Bench {
	topo := netsim.SingleDC(6)
	cfg := kv.DefaultConfig()
	cfg.Seed = 1
	cfg.HotCache = true
	eng := sim.New(cfg.Seed)
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	const key = "hotkey000000"
	cl.Preload(1, func(uint64) string { return key }, make([]byte, 128))
	done := false
	cb := func(kv.ReadResult) { done = true }
	// Warm up: promote the key and fill every coordinator's cache.
	for i := 0; i < 2048; i++ {
		done = false
		cl.Read(key, kv.One, cb)
		for !done && eng.Step() {
		}
		if !done {
			panic("benchreport: hot-key warmup read stalled")
		}
	}
	if cl.Usage().CacheHits == 0 {
		panic("benchreport: warmup produced no cache hits")
	}
	return measure("HotKeyCachedRead", target, func(n uint64) {
		before := cl.Usage().CacheHits
		for i := uint64(0); i < n; i++ {
			done = false
			cl.Read(key, kv.One, cb)
			for !done && eng.Step() {
			}
			if !done {
				panic("benchreport: hot-key read stalled")
			}
		}
		// Virtual time moves the clock past the freshness bound now and
		// then, so a few reads re-fill — but hits must dominate.
		if hits := cl.Usage().CacheHits - before; hits < n/2 {
			panic(fmt.Sprintf("benchreport: only %d/%d reads were cache hits", hits, n))
		}
	})
}

// benchZipfMixedHotSet measures the full PR 8 hot path under a Zipfian
// mix: 95% single-ack reads, 5% single-ack writes over a scrambled
// Zipf(0.99) keyspace with the tracker promoting and demoting and
// writes invalidating entries — the amortized per-op cost of the cache
// machinery under its intended workload.
func benchZipfMixedHotSet(target time.Duration) Bench {
	topo := netsim.SingleDC(6)
	cfg := kv.DefaultConfig()
	cfg.Seed = 1
	cfg.HotCache = true
	eng := sim.New(cfg.Seed)
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	const records = 1024
	key := func(i uint64) string { return fmt.Sprintf("user%012d", i) }
	val := make([]byte, 128)
	cl.Preload(records, key, val)
	keys := make([]string, records)
	for i := range keys {
		keys[i] = key(uint64(i))
	}
	zipf := stats.NewScrambledZipfian(records, 0.99)
	src := stats.NewSource(42)
	done := false
	rcb := func(kv.ReadResult) { done = true }
	wcb := func(kv.WriteResult) { done = true }
	op := func() {
		k := keys[zipf.Next(src)]
		done = false
		if src.Float64() < 0.05 {
			cl.Write(k, val, kv.One, wcb)
		} else {
			cl.Read(k, kv.One, rcb)
		}
		for !done && eng.Step() {
		}
		if !done {
			panic("benchreport: zipf mixed op stalled")
		}
	}
	// Warm up: the tracker needs a few eval windows to promote the head
	// keys before steady-state cost is measurable.
	for i := 0; i < 4096; i++ {
		op()
	}
	if u := cl.Usage(); u.HotPromotions == 0 || u.CacheHits == 0 {
		panic("benchreport: zipf warmup never engaged the cache")
	}
	return measure("ZipfMixedHotSet", target, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			op()
		}
	})
}

// benchWALAppend mirrors storage.BenchmarkWALAppend: the WAL-logged
// apply path of the LSM engine (encode + append + per-record sync +
// memtable insert). The engine is rebuilt per calibration round: with a
// shared engine the never-flushed memtable and WAL carry every previous
// round's records into the next, so the measured round's per-op cost
// depended on how many calibration rounds ran before it (the PR7
// report's 12.5µs "regression" was exactly this artifact).
func benchWALAppend(target time.Duration) Bench {
	val := make([]byte, 128)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%08d", i)
	}
	return measure("WALAppend", target, func(n uint64) {
		e := storage.NewLSMEngine(storage.Options{FlushLimit: 0, SyncBytes: 0, MaxRuns: 64})
		var seq uint64
		for i := uint64(0); i < n; i++ {
			seq++
			e.Apply(keys[i%4096], storage.Cell{
				Version: storage.Version{Timestamp: time.Duration(seq), Seq: seq},
				Value:   val,
			})
		}
	})
}

// benchMergeRead mirrors storage.BenchmarkMergeRead: Get across a
// populated memtable plus three striped sorted runs.
func benchMergeRead(target time.Duration) Bench {
	e := storage.NewLSMEngine(storage.Options{FlushLimit: 0, SyncBytes: 1 << 20, MaxRuns: 64})
	const records = 4096
	keys := make([]string, records)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%08d", i)
	}
	var seq uint64
	for r := 0; r < 4; r++ {
		for i := r; i < records; i += 4 {
			seq++
			e.Apply(keys[i], storage.Cell{
				Version: storage.Version{Timestamp: time.Duration(seq), Seq: seq},
				Value:   make([]byte, 128),
			})
		}
		if r < 3 {
			e.Flush() // the last stripe stays in the memtable
		}
	}
	return measure("MergeRead", target, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			if _, ok := e.Get(keys[i%records]); !ok {
				panic("benchreport: merge-read miss")
			}
		}
	})
}

// benchRingRebalance mirrors ring.BenchmarkAddRemoveNode: one scale-up +
// scale-down cycle on a 64-node ring with incremental placement
// recompute, the control-plane cost of a membership change.
func benchRingRebalance(target time.Duration) Bench {
	nodes := make([]netsim.NodeID, 64)
	for i := range nodes {
		nodes[i] = netsim.NodeID(i)
	}
	s := ring.NewSimpleStrategy(ring.New(nodes, 32, 7), 3)
	return measure("RingRebalance", target, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			s.AddNode(64)
			s.RemoveNode(64)
		}
	})
}

// benchSnapshotStream mirrors storage.BenchmarkSnapshotStream: the
// per-cell cost of the full rejoin pipeline — snapshot-iterate an LSM
// engine, serialize through the framed codec, apply on a mem engine.
func benchSnapshotStream(target time.Duration) Bench {
	src := storage.NewLSMEngine(storage.Options{FlushLimit: 64 << 10, SyncBytes: 1 << 20, MaxRuns: 8})
	const records = 4096
	for i := 0; i < records; i++ {
		seq := uint64(i + 1)
		src.Apply(fmt.Sprintf("user%08d", i), storage.Cell{
			Version: storage.Version{Timestamp: time.Duration(seq), Seq: seq},
			Value:   make([]byte, 128),
		})
	}
	var chunk []byte
	return measure("SnapshotStream", target, func(n uint64) {
		for i := uint64(0); i < n; i += records {
			dst := storage.NewMemEngine(0)
			it := src.Snapshot()
			for {
				k, c, ok := it.Next()
				if !ok {
					break
				}
				chunk = storage.EncodeCell(chunk[:0], k, c)
				if _, _, err := storage.ApplyEncoded(dst, chunk); err != nil {
					panic(err)
				}
			}
			if dst.Len() != records {
				panic("benchreport: snapshot stream lost cells")
			}
		}
	})
}

// benchRangeStreamPlan measures ring.Diff on a 64-node, 32-vnode ring
// join: the movement plan (range → sources → targets) that replaced
// per-key placement probing as the control-plane step of a membership
// change (PR 10).
func benchRangeStreamPlan(target time.Duration) Bench {
	nodes := make([]netsim.NodeID, 64)
	for i := range nodes {
		nodes[i] = netsim.NodeID(i)
	}
	joined := append(append([]netsim.NodeID{}, nodes...), 64)
	old := ring.NewSimpleStrategy(ring.New(nodes, 32, 7), 3)
	next := ring.NewSimpleStrategy(ring.New(joined, 32, 7), 3)
	moves := 0
	return measure("RangeStreamPlan", target, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			moves = len(ring.Diff(old, next))
		}
		if moves == 0 {
			panic("benchreport: empty movement plan for a join")
		}
	})
}

// benchRangeSnapshotStream is SnapshotStream's range-addressed twin: the
// same 4096-record LSM source and codec path, but reading only the arcs
// one of eight ring members owns (SnapshotRanges) instead of walking the
// whole store. Its per-cell cost runs higher than SnapshotStream's
// (token-filtered point reads instead of one merged scan), but a join
// reads ~1/N of the cells, so the whole transfer still wins by several
// fold.
func benchRangeSnapshotStream(target time.Duration) Bench {
	src := storage.NewLSMEngine(storage.Options{FlushLimit: 64 << 10, SyncBytes: 1 << 20, MaxRuns: 8})
	const records = 4096
	for i := 0; i < records; i++ {
		seq := uint64(i + 1)
		src.Apply(fmt.Sprintf("user%08d", i), storage.Cell{
			Version: storage.Version{Timestamp: time.Duration(seq), Seq: seq},
			Value:   make([]byte, 128),
		})
	}
	members := make([]netsim.NodeID, 8)
	for i := range members {
		members[i] = netsim.NodeID(i)
	}
	owned := ring.New(members, 32, 7).Ranges(0)
	moved := 0
	for it := src.SnapshotRanges(owned); ; moved++ {
		if _, _, ok := it.Next(); !ok {
			break
		}
	}
	if moved == 0 || moved*2 > records {
		panic("benchreport: range snapshot not a store fraction")
	}
	var chunk []byte
	return measure("RangeSnapshotStream", target, func(n uint64) {
		for i := uint64(0); i < n; i += uint64(moved) {
			dst := storage.NewMemEngine(0)
			it := src.SnapshotRanges(owned)
			for {
				k, c, ok := it.Next()
				if !ok {
					break
				}
				chunk = storage.EncodeCell(chunk[:0], k, c)
				if _, _, err := storage.ApplyEncoded(dst, chunk); err != nil {
					panic(err)
				}
			}
			if dst.Len() != moved {
				panic("benchreport: range snapshot stream lost cells")
			}
		}
	})
}

// benchGossipRound measures one SWIM probe round — deterministic peer
// selection, a ping/ack exchange with piggybacked updates and the probe
// timers — the steady-state background cost every node pays for
// decentralized membership. Eight staggered nodes tick once per
// interval each, so one interval/8 slice of virtual time is one round.
func benchGossipRound(target time.Duration) Bench {
	topo := netsim.SingleDC(8)
	cfg := kv.DefaultConfig()
	cfg.Seed = 1
	cfg.Gossip = true
	cfg.GossipInterval = 200 * time.Millisecond
	cfg.HintReplayInterval = 0 // gossip is the only periodic traffic
	cfg.AntiEntropyInterval = 0
	eng := sim.New(cfg.Seed)
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	step := cfg.GossipInterval / time.Duration(topo.N())
	return measure("GossipRound", target, func(n uint64) {
		before := cl.Usage().GossipRounds
		for i := uint64(0); i < n; i++ {
			eng.RunFor(step)
		}
		if cl.Usage().GossipRounds == before {
			panic("benchreport: no gossip rounds ran")
		}
	})
}

// benchStaleRingReadRetry measures the wrong-owner fallback end to end:
// every view except the joiner's and one displaced old owner's is
// rewound to the pre-join ring, then a read at ALL for a key the join
// moved is driven to completion — the displaced replica refuses with
// the missing ring events, the coordinator merges them, re-plans and
// retries against the true owners. The per-iteration view rewind is
// part of the measured loop (VNodes=32 bounds the strategy rebuild
// while still handing the joiner real ownership).
func benchStaleRingReadRetry(target time.Duration) Bench {
	topo := netsim.SingleDC(6)
	cfg := kv.DefaultConfig()
	cfg.Seed = 1
	cfg.Gossip = true
	cfg.VNodes = 32
	cfg.WarmupDuration = 0
	cfg.HintReplayInterval = 0
	cfg.AntiEntropyInterval = 0
	cfg.InitialMembers = []netsim.NodeID{0, 1, 2, 3, 4}
	eng := sim.New(cfg.Seed)
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	const records = 256
	key := func(i uint64) string { return fmt.Sprintf("stale%06d", i) }
	cl.Preload(records, key, make([]byte, 128))
	contains := func(list []netsim.NodeID, id netsim.NodeID) bool {
		for _, n := range list {
			if n == id {
				return true
			}
		}
		return false
	}
	oldOwners := make([][]netsim.NodeID, records)
	for i := range oldOwners {
		oldOwners[i] = append([]netsim.NodeID(nil), cl.Strategy().Replicas(key(uint64(i)))...)
	}
	joiner := netsim.NodeID(5)
	cl.Join(joiner)
	// Agreement is trivially total until the flip appends the ring event,
	// so wait for the flip first, then for every view to catch up.
	for i := 0; i < 400 && !cl.IsMember(joiner); i++ {
		eng.RunFor(50 * time.Millisecond)
	}
	for i := 0; i < 400 && !cl.MembershipConverged(); i++ {
		eng.RunFor(50 * time.Millisecond)
	}
	if !cl.IsMember(joiner) || !cl.MembershipConverged() {
		panic("benchreport: views never converged after the join")
	}
	var staleKey string
	displaced := netsim.NodeID(-1)
	for i := 0; i < records && displaced < 0; i++ {
		newR := cl.Strategy().Replicas(key(uint64(i)))
		if !contains(newR, joiner) {
			continue
		}
		for _, r := range oldOwners[i] {
			if !contains(newR, r) {
				staleKey, displaced = key(uint64(i)), r
				break
			}
		}
	}
	if displaced < 0 {
		panic("benchreport: the join displaced no key")
	}
	var stale []netsim.NodeID
	for _, m := range cl.Members() {
		if m != joiner && m != displaced {
			stale = append(stale, m)
		}
	}
	return measure("StaleRingReadRetry", target, func(n uint64) {
		before := cl.Usage().WrongOwnerRetries
		for i := uint64(0); i < n; i++ {
			for _, m := range stale {
				cl.ResetGossipView(m, 0)
			}
			done := false
			cl.Read(staleKey, kv.All, func(kv.ReadResult) { done = true })
			for !done && eng.Step() {
			}
			if !done {
				panic("benchreport: stale-ring read stalled")
			}
		}
		if cl.Usage().WrongOwnerRetries == before {
			panic("benchreport: no wrong-owner retry ran")
		}
	})
}

// loopReader replays one encoded byte sequence forever — an endless
// pipelined client for the RESP decoder.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	n := copy(p, l.data[l.off:])
	l.off += n
	if l.off == len(l.data) {
		l.off = 0
	}
	return n, nil
}

// benchRESPDecode mirrors wire.BenchmarkRESPDecode: parse one pipelined
// SET command per op — the per-command ingress cost of the TCP front
// end. Must stay at 0 allocs/op: the reader retains and reslices its
// own buffers.
func benchRESPDecode(target time.Duration) Bench {
	cmd := []byte("*3\r\n$3\r\nSET\r\n$8\r\nkey:1234\r\n$64\r\n" +
		string(bytes.Repeat([]byte("x"), 64)) + "\r\n")
	r := wire.NewRESPReader(&loopReader{data: cmd})
	return measure("RESPDecode", target, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			if _, err := r.ReadCommand(); err != nil {
				panic(err)
			}
		}
	})
}

// benchRESPEncode mirrors wire.BenchmarkRESPEncode: one op writes a
// simple string, a 64-byte bulk and an integer — a representative reply
// batch slice — flushing every 64 ops as a pipelined server would.
func benchRESPEncode(target time.Duration) Bench {
	value := bytes.Repeat([]byte("x"), 64)
	w := wire.NewRESPWriter(io.Discard)
	return measure("RESPEncode", target, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			w.SimpleString("OK")
			w.Bulk(value)
			w.Int(1)
			if i%64 == 63 {
				if err := w.Flush(); err != nil {
					panic(err)
				}
			}
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
	})
}

// benchWireRoundTripLoopback measures the full inter-process codec
// path — marshal a replica write into a frame, read the frame back,
// decode into a pooled box — the per-message cost the TCP mesh adds
// over in-process delivery.
func benchWireRoundTripLoopback(target time.Duration) Bench {
	value := bytes.Repeat([]byte("x"), 64)
	buf := make([]byte, 0, 256)
	return measure("WireRoundTripLoopback", target, func(n uint64) {
		var err error
		for i := uint64(0); i < n; i++ {
			if buf, err = kv.WireBenchRoundTrip(buf, i, value); err != nil {
				panic(err)
			}
		}
	})
}

// benchStore is an always-settled fixed-size store; the bench feeds a
// workload whose recommendation equals the current size, so Step runs
// the full sample → optimize → judge pipeline without enacting.
type benchStore struct{ members []netsim.NodeID }

func (s *benchStore) Members() []netsim.NodeID            { return s.members }
func (s *benchStore) State(netsim.NodeID) kv.NodeState    { return kv.StateLive }
func (s *benchStore) MembershipSettled() bool             { return true }
func (s *benchStore) MembershipConverged() bool           { return true }
func (s *benchStore) TryJoin(netsim.NodeID) error         { return nil }
func (s *benchStore) TryDecommission(netsim.NodeID) error { return nil }

// benchSampler returns a fixed, fully populated snapshot (top keys and
// tail included, so the workload distillation is paid too).
type benchSampler struct{ snap monitor.Snapshot }

func (s *benchSampler) Snapshot() monitor.Snapshot { return s.snap }

type benchClock struct{ now time.Duration }

func (c *benchClock) Now() time.Duration             { return c.now }
func (c *benchClock) Schedule(time.Duration, func()) {}

// benchAutoscaleDecide measures one autoscale control period: distill
// the monitor snapshot, run provision.Optimize over the size range and
// judge hysteresis/cooldown/boundary — the recurring cost of keeping
// the cost loop closed.
func benchAutoscaleDecide(target time.Duration) Bench {
	members := make([]netsim.NodeID, 6)
	candidates := make([]netsim.NodeID, 16)
	for i := range candidates {
		candidates[i] = netsim.NodeID(i)
	}
	copy(members, candidates[:6])
	// 7000 ops/s at this node model recommends exactly 6 nodes — the
	// current size — so every Step exercises the full pipeline and
	// holds.
	snap := monitor.Snapshot{
		ReadRate:  5600,
		WriteRate: 1400,
		TopKeys: []monitor.KeyRate{
			{Key: "a", ReadShare: 0.2, WriteRate: 80},
			{Key: "b", ReadShare: 0.1, WriteRate: 40},
			{Key: "c", ReadShare: 0.05, WriteRate: 20},
		},
		TailKeys: 5000, TailReadShr: 0.65, TailWriteRte: 860,
	}
	clock := &benchClock{}
	ctl := autoscale.New(&benchStore{members: members}, &benchSampler{snap: snap}, clock, autoscale.Config{
		NodeType: provision.NodeType{
			Name: "bench", HourlyCost: 0.24, Concurrency: 2,
			ReadServiceMean:  time.Millisecond,
			WriteServiceMean: time.Millisecond,
		},
		Constraints: provision.Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1,
			MaxStaleRate: 1, FailureBudget: 1},
		Pricing:    cost.EC2East2013().PerSecond(),
		Candidates: candidates,
		Interval:   time.Second,
		LogLimit:   64,
	})
	return measure("AutoscaleDecide", target, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			ctl.Step()
			clock.now += time.Second
		}
	})
}

func runExperiment() Experiment {
	p := experiments.G5KHarmony().Scaled(benchScale)
	start := time.Now()
	res := experiments.Run(experiments.RunSpec{
		Platform: p,
		Tuner:    harmony.New(0.20, p.RF),
		Seed:     1,
	})
	wall := time.Since(start).Seconds()
	m := res.Metrics
	e := Experiment{
		Name:        "ExpAHarmony/g5k-84node/alpha=20%",
		WallSeconds: wall,
		VirtualOps:  m.Ops,
		Events:      res.Events,
		Throughput:  m.Throughput(),
		StaleRate:   m.StaleRate(),
	}
	if wall > 0 {
		e.VopsPerSec = float64(m.Ops) / wall
		e.EventsPerSec = float64(res.Events) / wall
	}
	return e
}

// runRepolint measures a whole-repo repolint pass: load and type-check
// the module from source, run all four analyzers. This is the wall
// time a developer pays for `go run ./cmd/repolint ./...` from a warm
// go list cache, tracked so the suite cannot quietly become too slow
// to run locally.
func runRepolint() Tool {
	start := time.Now()
	pkgs, err := load.Packages(".", "./...")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: repolint load: %v\n", err)
		os.Exit(1)
	}
	findings := analysis.Run(pkgs, suite.All())
	return Tool{
		Name:        "RepolintWholeRepo",
		WallSeconds: time.Since(start).Seconds(),
		Packages:    len(pkgs),
		Findings:    len(findings),
	}
}

func main() {
	out := flag.String("o", "BENCH_PR10.json", "output path")
	quick := flag.Bool("quick", false, "short measurement windows (CI smoke)")
	baseline := flag.String("baseline", "", "previously captured report to embed under \"baseline\"")
	flag.Parse()

	target := time.Second
	if *quick {
		target = 50 * time.Millisecond
	}

	rep := Report{
		GeneratedBy: "go run ./cmd/benchreport",
		GoVersion:   runtime.Version(),
		Gomaxprocs:  runtime.GOMAXPROCS(0),
		Scale:       benchScale,
	}
	fmt.Fprintln(os.Stderr, "benchreport: micro-benchmarks...")
	rep.Benchmarks = append(rep.Benchmarks,
		benchEngineSchedule(target),
		benchTransportSend(target),
		benchKVReadQuorum(target),
		benchHotKeyCachedRead(target),
		benchZipfMixedHotSet(target),
		benchWALAppend(target),
		benchMergeRead(target),
		benchRingRebalance(target),
		benchSnapshotStream(target),
		benchRangeStreamPlan(target),
		benchRangeSnapshotStream(target),
		benchAutoscaleDecide(target),
		benchGossipRound(target),
		benchStaleRingReadRetry(target),
		benchRESPDecode(target),
		benchRESPEncode(target),
		benchWireRoundTripLoopback(target),
	)
	fmt.Fprintln(os.Stderr, "benchreport: end-to-end experiment...")
	rep.Experiments = append(rep.Experiments, runExperiment())
	fmt.Fprintln(os.Stderr, "benchreport: whole-repo repolint...")
	rep.Tools = append(rep.Tools, runRepolint())
	rep.Notes = append(rep.Notes,
		"WALAppend now rebuilds the LSM engine per calibration round; the PR7 report's "+
			"12.5µs (vs PR6's 2.4µs) was a harness artifact — a shared engine carried every "+
			"earlier round's memtable and WAL into the measured round, not a storage regression.",
		"HotKeyCachedRead serves a tracked hot key from the coordinator read cache (PR 8); "+
			"compare against KVReadQuorum for the replica round-trip it removes.",
		"every benchmark reports the fastest of three measured rounds at the calibrated "+
			"iteration count (earlier reports measured a single round, one sample of a "+
			"noisy machine).",
		"RESPDecode/RESPEncode/WireRoundTripLoopback track the serving-layer codecs "+
			"(PR 9): the RESP front-end command parse and reply encode (both 0 allocs/op "+
			"by construction) and the framed inter-process replica-message round trip.",
		"RangeStreamPlan/RangeSnapshotStream track the range-addressed rebalance path "+
			"(PR 10): ring.Diff movement planning for a 64-node join, and the "+
			"SnapshotStream codec pipeline bounded to the arcs one of eight members "+
			"owns — costlier per cell (token-filtered point reads vs one merged scan) "+
			"but ~1/N of the cells read, so the whole transfer wins severalfold.")

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: baseline: %v\n", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: baseline: %v\n", err)
			os.Exit(1)
		}
		base.Baseline = nil // no nesting
		rep.Baseline = &base
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	for _, b := range rep.Benchmarks {
		fmt.Printf("%-16s %10.1f ns/op %8.2f allocs/op\n", b.Name, b.NsPerOp, b.AllocsPerOp)
	}
	for _, e := range rep.Experiments {
		fmt.Printf("%-40s %6.2fs wall  %8.0f vops/s  %9.0f events/s  stale=%.2f%%\n",
			e.Name, e.WallSeconds, e.VopsPerSec, e.EventsPerSec, 100*e.StaleRate)
	}
	for _, tl := range rep.Tools {
		fmt.Printf("%-40s %6.2fs wall  %4d packages  %d findings\n",
			tl.Name, tl.WallSeconds, tl.Packages, tl.Findings)
	}
	fmt.Printf("wrote %s\n", *out)
}
