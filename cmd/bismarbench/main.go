// Command bismarbench regenerates the paper's §IV-B Bismar evaluation:
// the consistency-cost efficiency metric sampled across access patterns
// and levels (-samples), the adaptive Bismar tuner against every static
// level over a phased workload, and the storage-I/O pricing study
// (-storage): measured per-op WAL/fsync/compaction rates fed through the
// cost model and the engine-aware provisioner.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	platform := flag.String("platform", "g5k", "platform preset: g5k (50 nodes) or ec2 (18 VMs)")
	scale := flag.Float64("scale", 0.02, "operation/record scale factor (1 = paper scale)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	samples := flag.Bool("samples", false, "run the efficiency-metric sampling study instead of the adaptive comparison")
	storageStudy := flag.Bool("storage", false, "run the storage-I/O pricing study (engines, tuner and provisioning)")
	flag.Parse()

	var p experiments.Platform
	switch *platform {
	case "g5k":
		p = experiments.G5KCost()
	case "ec2":
		p = experiments.EC2Cost()
	default:
		fmt.Fprintf(os.Stderr, "unknown platform %q (want g5k or ec2)\n", *platform)
		os.Exit(2)
	}

	if *storageStudy {
		fmt.Printf("platform %s: %d nodes, RF %d (scale %.3f)\n", p.Name, p.Nodes, p.RF, *scale)
		_, table := experiments.RunStorageCost(p, *scale, *seed)
		table.Render(os.Stdout)
		return
	}
	if *samples {
		sp := p.Scaled(*scale)
		fmt.Printf("platform %s: %d nodes, RF %d (scale %.3f)\n", sp.Name, sp.Nodes, sp.RF, *scale)
		_, table := experiments.RunExpB2Metric(sp, *seed)
		table.Render(os.Stdout)
		return
	}
	fmt.Printf("platform %s: %d nodes, RF %d (scale %.3f)\n", p.Name, p.Nodes, p.RF, *scale)
	_, table := experiments.RunExpC(p, *scale, *seed)
	table.Render(os.Stdout)
}
