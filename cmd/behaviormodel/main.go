// Command behaviormodel demonstrates the §III-C pipeline end to end:
// synthesize a multi-phase application day, collect its access trace,
// build the behaviour model offline (timeline → k-means states → policy
// rules) and replay a second day under the runtime classifier.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

type phase struct {
	name    string
	read    float64
	theta   float64
	ops     uint64
	threads int
	records uint64
}

func day(scale float64) []phase {
	s := func(n uint64) uint64 { return uint64(float64(n) * scale) }
	return []phase{
		{"overnight analytics", 1.00, 0.80, s(40000), 24, 8000},
		{"morning traffic", 0.85, 0.99, s(50000), 48, 4000},
		{"midday mixed", 0.70, 0.99, s(50000), 64, 2000},
		{"lunchtime burst", 0.50, 0.99, s(60000), 96, 1000},
		{"afternoon traffic", 0.85, 0.99, s(50000), 48, 4000},
		{"evening browsing", 0.93, 0.90, s(40000), 32, 6000},
	}
}

func main() {
	scale := flag.Float64("scale", 0.3, "operation scale factor")
	seed := flag.Uint64("seed", 11, "simulation seed")
	period := flag.Duration("period", 200*time.Millisecond, "timeline period length")
	flag.Parse()

	topo := repro.G5KTwoSites(12)
	cfg := repro.Defaults(topo)
	cfg.Seed = *seed
	phases := day(*scale)

	// Day 1: collection.
	sim := repro.NewSim(topo, cfg)
	col := sim.CollectTrace(0)
	cli := sim.StaticClient(repro.One, repro.One)
	fmt.Println("day 1: collecting the application's access trace")
	for _, ph := range phases {
		w := repro.MixWorkload(ph.records, ph.read, 0, ph.theta)
		m, err := cli.Run(w, repro.RunOptions{Ops: ph.ops, Threads: ph.threads})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %7.0f ops/s, %d ops\n", ph.name, m.Throughput(), m.Ops)
	}
	trace := col.Trace()
	fmt.Printf("trace: %d operations over %v\n\n", len(trace.Ops), trace.Duration().Round(time.Millisecond))

	// Offline modeling.
	tl := repro.BuildTimeline(trace, *period)
	model, err := repro.BuildBehaviorModel(tl, repro.DefaultBehaviorOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(os.Stdout, model.Describe())

	// Day 2: runtime classification drives consistency.
	sim2 := repro.NewSim(topo, cfg)
	acli, ctl := sim2.BehaviorClient(model)
	fmt.Println("\nday 2: runtime classifier in control")
	for _, ph := range phases {
		w := repro.MixWorkload(ph.records, ph.read, 0, ph.theta)
		m, err := acli.Run(w, repro.RunOptions{Ops: ph.ops, Threads: ph.threads})
		if err != nil {
			log.Fatal(err)
		}
		j := ctl.Journal()
		reason := ""
		if len(j) > 0 {
			reason = j[len(j)-1].Decision.Reason
		}
		fmt.Printf("  %-20s %7.0f ops/s  stale %.2f%%  %s\n",
			ph.name, m.Throughput(), 100*m.StaleRate(), reason)
	}
	fmt.Printf("\nlevel changes across the day: %d; overall stale reads: %.2f%%\n",
		ctl.LevelChanges(), 100*sim2.StaleRate())
}
