package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"time"

	"repro/internal/wire"
)

// The client half of storeserve: a one-shot RESP command runner (-cli)
// and a pipelined load generator (-bench), so clusters can be smoked
// and measured on hosts without redis-cli or redis-benchmark.

// runCLI sends one command and prints the reply, redis-cli style.
func runCLI(addr string, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: storeserve -cli -addr host:port COMMAND [args...]")
		return 2
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer conn.Close()
	w := wire.NewRESPWriter(conn)
	w.Array(len(args))
	for _, a := range args {
		w.BulkString(a)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	r := bufio.NewReader(conn)
	out, isErr, err := readReply(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(out)
	if isErr {
		return 1
	}
	return 0
}

// readReply parses one RESP2 reply and renders it as text.
func readReply(r *bufio.Reader) (string, bool, error) {
	t, err := r.ReadByte()
	if err != nil {
		return "", false, err
	}
	line, err := readLine(r)
	if err != nil {
		return "", false, err
	}
	switch t {
	case '+':
		return line, false, nil
	case '-':
		return "(error) " + line, true, nil
	case ':':
		return "(integer) " + line, false, nil
	case '$':
		n, err := strconv.Atoi(line)
		if err != nil {
			return "", false, err
		}
		if n < 0 {
			return "(nil)", false, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", false, err
		}
		return string(buf[:n]), false, nil
	case '*':
		n, err := strconv.Atoi(line)
		if err != nil {
			return "", false, err
		}
		if n < 0 {
			return "(nil)", false, nil
		}
		out := ""
		for i := 0; i < n; i++ {
			item, _, err := readReply(r)
			if err != nil {
				return "", false, err
			}
			if i > 0 {
				out += "\n"
			}
			out += fmt.Sprintf("%d) %s", i+1, item)
		}
		if n == 0 {
			out = "(empty array)"
		}
		return out, false, nil
	}
	return "", false, fmt.Errorf("bad reply type %q", t)
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return "", fmt.Errorf("malformed reply line")
	}
	return line[:len(line)-2], nil
}

// skipReply consumes one reply, reporting only whether it was an error.
func skipReply(r *bufio.Reader) (bool, error) {
	t, err := r.ReadByte()
	if err != nil {
		return false, err
	}
	line, err := readLine(r)
	if err != nil {
		return false, err
	}
	switch t {
	case '+', ':':
		return false, nil
	case '-':
		return true, nil
	case '$':
		n, err := strconv.Atoi(line)
		if err != nil {
			return false, err
		}
		if n >= 0 {
			if _, err := r.Discard(n + 2); err != nil {
				return false, err
			}
		}
		return false, nil
	case '*':
		n, err := strconv.Atoi(line)
		if err != nil {
			return false, err
		}
		anyErr := false
		for i := 0; i < n; i++ {
			e, err := skipReply(r)
			if err != nil {
				return false, err
			}
			anyErr = anyErr || e
		}
		return anyErr, nil
	}
	return false, fmt.Errorf("bad reply type %q", t)
}

// runBench drives a SET phase then a GET phase, each ops commands deep
// with `pipeline` commands in flight, and reports ops/s.
func runBench(addr string, ops, pipeline, valueSize, keys int) int {
	if pipeline < 1 {
		pipeline = 1
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer conn.Close()
	w := wire.NewRESPWriter(conn)
	r := bufio.NewReaderSize(conn, 1<<16)
	value := make([]byte, valueSize)
	for i := range value {
		value[i] = 'x'
	}
	var key []byte
	phase := func(name string, encode func(i int)) bool {
		start := time.Now()
		errs := 0
		for sent := 0; sent < ops; {
			batch := pipeline
			if ops-sent < batch {
				batch = ops - sent
			}
			for i := 0; i < batch; i++ {
				encode(sent + i)
			}
			if err := w.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return false
			}
			for i := 0; i < batch; i++ {
				isErr, err := skipReply(r)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return false
				}
				if isErr {
					errs++
				}
			}
			sent += batch
		}
		el := time.Since(start)
		fmt.Printf("%s: %d ops in %v = %.0f ops/s (pipeline %d, errors %d)\n",
			name, ops, el.Round(time.Millisecond), float64(ops)/el.Seconds(), pipeline, errs)
		return errs == 0
	}
	makeKey := func(i int) []byte {
		key = key[:0]
		key = append(key, "key:"...)
		return strconv.AppendInt(key, int64(i%keys), 10)
	}
	okSet := phase("SET", func(i int) {
		w.Array(3)
		w.BulkString("SET")
		w.Bulk(makeKey(i))
		w.Bulk(value)
	})
	okGet := phase("GET", func(i int) {
		w.Array(2)
		w.BulkString("GET")
		w.Bulk(makeKey(i))
	})
	if okSet && okGet {
		return 0
	}
	return 1
}
