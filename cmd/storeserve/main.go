// Command storeserve runs the store as a real server: a Redis-compatible
// TCP front end (internal/server) over a serving deployment
// (repro.NewServing). One process can serve a whole cluster, or N
// processes — each owning a subset of the ring and meshed to its peers
// over framed binary connections — form one cluster that redis-cli can
// talk to through any of them:
//
//	storeserve -listen :6380 -mesh :7380 -local 0 \
//	    -peers '1=localhost:7381,2=localhost:7382' -nodes 3
//
// Every process must be started with the same topology, node count,
// replication factor and seed (they all compute the identical ring).
//
// Because the container may not have redis-cli or redis-benchmark, the
// binary doubles as both:
//
//	storeserve -cli -addr localhost:6380 SET k v   # one-shot client
//	storeserve -bench -addr localhost:6380         # pipelined loadgen
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	listen := flag.String("listen", ":6380", "RESP listen address")
	meshListen := flag.String("mesh", "", "peer-mesh listen address (multi-process clusters)")
	localSpec := flag.String("local", "", "comma-separated node ids this process serves (empty: all)")
	peersSpec := flag.String("peers", "", "remote nodes as 'id=host:port,...' naming each owner's -mesh address")
	topoName := flag.String("topology", "single", "topology: g5k, ec2, single, geo")
	nodes := flag.Int("nodes", 3, "node count")
	rf := flag.Int("rf", 3, "replication factor")
	level := flag.String("level", "QUORUM", "consistency level (see storesim) or 'harmony:<alpha>'")
	interval := flag.Duration("interval", 2*time.Second, "adaptive tuner re-decision interval")
	engine := flag.String("engine", "mem", "storage engine: mem or lsm")
	seed := flag.Uint64("seed", 1, "cluster seed (identical across all processes)")
	hotcache := flag.Bool("hotcache", false, "hot-key coordinator read cache")
	cliMode := flag.Bool("cli", false, "act as a one-shot RESP client: storeserve -cli -addr host:port CMD [args...]")
	benchMode := flag.Bool("bench", false, "act as a pipelined RESP load generator against -addr")
	addr := flag.String("addr", "localhost:6380", "server address for -cli/-bench")
	benchOps := flag.Int("ops", 200000, "-bench: operations per phase")
	pipeline := flag.Int("pipeline", 64, "-bench: commands in flight per batch")
	valueSize := flag.Int("value", 64, "-bench: value size in bytes")
	benchKeys := flag.Int("keys", 10000, "-bench: key space size")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (stopped on shutdown)")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on shutdown")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *cliMode {
		os.Exit(runCLI(*addr, flag.Args()))
	}
	if *benchMode {
		os.Exit(runBench(*addr, *benchOps, *pipeline, *valueSize, *benchKeys))
	}

	// Serving trades heap headroom for throughput: the request path
	// churns small short-lived objects against a small live heap, so the
	// default GC cadence spends a third of a core marking. Collect 4x
	// less often (overridable with GOGC as usual).
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	topo, err := repro.ParseTopology(*topoName, *nodes)
	if err != nil {
		fatal(err)
	}
	cfg := repro.ServingDefaults(topo)
	cfg.RF = *rf
	cfg.Seed = *seed
	cfg.HotCache = *hotcache
	if cfg.Engine, err = repro.ParseEngine(*engine); err != nil {
		fatal(err)
	}
	spec, err := repro.ParseClientSpec(*level)
	if err != nil {
		fatal(err)
	}

	local, err := parseNodeList(*localSpec)
	if err != nil {
		fatal(err)
	}
	peers, err := parsePeers(*peersSpec)
	if err != nil {
		fatal(err)
	}
	deploy, err := repro.NewServing(topo, cfg, repro.ServeConfig{
		Local:      local,
		MeshListen: *meshListen,
		Peers:      peers,
	})
	if err != nil {
		fatal(err)
	}

	var sess repro.Session
	var ctl *repro.Controller
	read, write := spec.Level, spec.Level
	if spec.Harmony {
		sess, ctl = deploy.AdaptiveSession(repro.NewHarmonyTuner(spec.Alpha, deploy.Cluster.RF()), *interval)
	} else {
		sess = deploy.StaticSession(spec.Level, spec.Level)
	}

	srv := server.New(deploy, sess, read, write)
	if ctl != nil {
		srv.SetController(ctl)
	}
	if err := srv.Listen(*listen); err != nil {
		fatal(err)
	}
	fmt.Printf("storeserve: RESP on %s", srv.Addr())
	if *meshListen != "" {
		fmt.Printf(", mesh on %s", deploy.Engine.MeshAddr())
	}
	if len(local) > 0 {
		fmt.Printf(", serving nodes %s", *localSpec)
	}
	fmt.Printf(" (%d-node %s, RF %d, level %s)\n", topo.N(), *topoName, *rf, *level)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	deploy.Engine.Close()
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err == nil {
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}
	}
}

func parseNodeList(s string) ([]repro.NodeID, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ids := make([]repro.NodeID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", p)
		}
		ids = append(ids, repro.NodeID(n))
	}
	return ids, nil
}

func parsePeers(s string) (map[repro.NodeID]string, error) {
	if s == "" {
		return nil, nil
	}
	peers := make(map[repro.NodeID]string)
	for _, p := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(p), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", p)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return nil, fmt.Errorf("bad peer node id %q", id)
		}
		peers[repro.NodeID(n)] = addr
	}
	return peers, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
