// Command storesim runs ad-hoc workloads against the simulated store
// through the unified Client API: pick a topology, replication factor,
// consistency level (or an adaptive tuner), a workload mix and an
// optional multi-key batch size, and get throughput, latency, staleness,
// resource usage and the priced bill. The -join and -decommission flags
// turn the run into an elasticity scenario: a spare node joins the ring
// mid-run via snapshot-streaming bootstrap, and a member streams its
// ownership out and leaves, with the workload running throughout. With
// -gossip the membership is disseminated through SWIM-style gossip
// (per-node views, suspicion, wrong-owner fallback) instead of flipping
// atomically, and -suspect <node> fails that node mid-run so the
// per-peer detectors suspect and condemn it, then recovers it so the
// refutation handshake resurrects it in every view.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/experiments"
)

func main() {
	topoName := flag.String("topology", "g5k", "topology: g5k, ec2, single, geo")
	nodes := flag.Int("nodes", 12, "node count")
	rf := flag.Int("rf", 3, "replication factor")
	level := flag.String("level", "ONE", "consistency level (ONE, TWO, THREE, QUORUM, ALL, LOCAL_QUORUM, EACH_QUORUM, K(n)) or 'harmony:<alpha>'")
	readProp := flag.Float64("reads", 0.5, "read proportion of the mix")
	records := flag.Uint64("records", 10000, "records loaded")
	ops := flag.Uint64("ops", 100000, "operations to run")
	threads := flag.Int("threads", 128, "closed-loop client threads")
	batch := flag.Int("batch", 1, "multi-key batch size (>1 drives BatchGet/BatchPut)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	theta := flag.Float64("theta", 0.99, "zipfian skew")
	zipf := flag.Bool("zipf", true, "scrambled-zipfian key popularity (false: uniform; skew set by -theta)")
	hotcache := flag.Bool("hotcache", false, "hot-key fast path: deterministic hot-set tracker + freshness-bounded coordinator read cache")
	engine := flag.String("engine", "mem", "storage engine: mem (volatile map) or lsm (WAL + sorted runs)")
	join := flag.Bool("join", false, "mid-run, a spare node joins the ring (snapshot-streaming bootstrap + warming)")
	decom := flag.Bool("decommission", false, "mid-run, the highest member streams its ownership out and leaves")
	autoscaleOn := flag.Bool("autoscale", false, "start at the RF+1 provisioning floor and let the cost-loop controller size the cluster from the observed load")
	gossipOn := flag.Bool("gossip", false, "disseminate membership through SWIM gossip: per-node views, suspicion, wrong-owner fallback (instead of atomic placement)")
	suspect := flag.Int("suspect", -1, "mid-run, fail this node so every peer's gossip detector suspects it and declares it dead, then recover it to show refutation (requires -gossip)")
	flag.Parse()

	if *autoscaleOn && (*join || *decom) {
		fmt.Fprintln(os.Stderr, "-autoscale drives membership itself; drop -join/-decommission")
		os.Exit(2)
	}
	if *suspect >= 0 && !*gossipOn {
		fmt.Fprintln(os.Stderr, "-suspect demonstrates the gossip failure detector; add -gossip")
		os.Exit(2)
	}
	if *suspect >= 0 && (*join || *decom || *autoscaleOn) {
		fmt.Fprintln(os.Stderr, "-suspect segments the run itself; drop -join/-decommission/-autoscale")
		os.Exit(2)
	}

	// An elasticity scenario needs a spare topology node to join.
	topoNodes := *nodes
	if *join {
		topoNodes++
	}
	topo, err := repro.ParseTopology(*topoName, topoNodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := repro.Defaults(topo)
	cfg.RF = *rf
	cfg.Seed = *seed
	// Derive the member set from the topology actually built (geo rounds
	// the node count to whole regions): with -join the last topology node
	// is the spare that joins mid-run.
	memberCount := topo.N()
	if *join {
		memberCount = topo.N() - 1
		members := make([]repro.NodeID, memberCount)
		for i := range members {
			members[i] = repro.NodeID(i)
		}
		cfg.InitialMembers = members
	}
	if *join || *decom {
		cfg.WarmupDuration = 2 * time.Second
		cfg.AntiEntropyInterval = 500 * time.Millisecond
	}
	if *autoscaleOn {
		// Start at the provisioning floor (RF + one tolerated failure)
		// and let the controller grow into the rest of the topology.
		memberCount = *rf + 1
		if memberCount > topo.N() {
			memberCount = topo.N()
		}
		members := make([]repro.NodeID, memberCount)
		for i := range members {
			members[i] = repro.NodeID(i)
		}
		cfg.InitialMembers = members
		cfg.WarmupDuration = time.Second
		cfg.AntiEntropyInterval = 500 * time.Millisecond
	}
	if memberCount < *rf {
		fmt.Fprintf(os.Stderr, "only %d members for RF %d\n", memberCount, *rf)
		os.Exit(2)
	}
	// With -join the decommission happens after the join, so membership
	// never drops below the (already validated) starting count.
	if *decom && !*join && memberCount-1 < *rf {
		fmt.Fprintf(os.Stderr, "decommission would drop below RF (%d members, RF %d)\n", memberCount, *rf)
		os.Exit(2)
	}
	if *suspect >= 0 && *suspect >= memberCount {
		fmt.Fprintf(os.Stderr, "-suspect %d is not a member (members 0..%d)\n", *suspect, memberCount-1)
		os.Exit(2)
	}
	cfg.Gossip = *gossipOn
	cfg.HotCache = *hotcache
	if cfg.Engine, err = repro.ParseEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec, err := repro.ParseClientSpec(*level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sim := repro.NewSim(topo, cfg)

	var cli repro.Client
	var ctl *repro.Controller
	if spec.Harmony {
		cli, ctl = sim.HarmonyClient(spec.Alpha)
	} else {
		cli = sim.StaticClient(spec.Level, spec.Level)
	}

	// The cost loop: observed workload → provision.Optimize →
	// Join/Decommission. The node model mirrors the store's configured
	// service profile; billing is per-second so scale-down never waits
	// for an hour boundary inside a short run.
	var asc *repro.Autoscaler
	if *autoscaleOn {
		// Derive a failure budget and read level the replication factor
		// can actually carry — RF−FailureBudget must cover the level, or
		// every plan is "level unreachable" and the controller holds
		// forever.
		failures := 1
		if *rf < 2 {
			failures = 0
		}
		readLevel := *rf - failures
		if readLevel > 2 {
			readLevel = 2
		}
		if readLevel < 1 {
			readLevel = 1
		}
		asc = sim.Autoscale(repro.AutoscaleConfig{
			NodeType: repro.NodeType{
				Name:             "sim-node",
				HourlyCost:       experiments.Pricing().InstanceHour,
				Concurrency:      cfg.Concurrency,
				ReadServiceMean:  cfg.ReadService.Mean(),
				WriteServiceMean: cfg.WriteService.Mean(),
			},
			Constraints: repro.ProvisionConstraints{
				RF: *rf, ReadLevel: readLevel, WriteLevel: 1,
				MaxStaleRate: 0.10, FailureBudget: failures,
			},
			Pricing:  experiments.Pricing().PerSecond(),
			Interval: 200 * time.Millisecond,
			Cooldown: time.Second,
		})
	}

	// Segment the run around the membership changes: join at ~1/3,
	// decommission at ~2/3, workload running in every segment.
	type segment struct {
		label  string
		ops    uint64
		before func()
	}
	var segments []segment
	victim := repro.NodeID(memberCount - 1)
	spare := repro.NodeID(memberCount)
	switch {
	case *join && *decom:
		segments = []segment{
			{"steady", *ops / 3, nil},
			{"after join", *ops / 3, func() { sim.Join(spare) }},
			{"after decommission", *ops - 2*(*ops/3), func() { sim.Decommission(victim) }},
		}
	case *join:
		segments = []segment{
			{"steady", *ops / 2, nil},
			{"after join", *ops - *ops/2, func() { sim.Join(spare) }},
		}
	case *decom:
		segments = []segment{
			{"steady", *ops / 2, nil},
			{"after decommission", *ops - *ops/2, func() { sim.Decommission(victim) }},
		}
	case *suspect >= 0:
		target := repro.NodeID(*suspect)
		segments = []segment{
			{"steady", *ops / 3, nil},
			{"suspected", *ops / 3, func() { sim.Cluster.Fail(target) }},
			{"refuted", *ops - 2*(*ops/3), func() { sim.Cluster.Recover(target) }},
		}
	default:
		segments = []segment{{"steady", *ops, nil}}
	}

	dist := repro.DistZipfian
	if !*zipf {
		dist = repro.DistUniform
	}
	w := repro.MixWorkload(*records, *readProp, dist, *theta)
	start := time.Now()
	var m *repro.Metrics
	var totalOps uint64
	var virtual time.Duration
	for i, seg := range segments {
		if seg.before != nil {
			seg.before()
			sim.Run(5 * time.Second) // streaming, flip and warmup progress
		}
		var err error
		m, err = cli.Run(w, repro.RunOptions{
			Ops: seg.ops, Threads: *threads, BatchSize: *batch, NoPreload: i > 0,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		totalOps += m.Ops
		virtual += m.Elapsed()
		if len(segments) > 1 {
			fmt.Printf("%-18s %d members, %8.0f ops/s, stale %.2f%%\n",
				seg.label+":", len(sim.Members()), m.Throughput(), 100*m.StaleRate())
		}
	}

	popularity := fmt.Sprintf("zipf θ=%.2f", *theta)
	if !*zipf {
		popularity = "uniform"
	}
	fmt.Printf("workload: %d ops (%.0f%% reads, %s) on %d nodes RF %d, level %s, batch %d\n",
		totalOps, 100**readProp, popularity, len(sim.Members()), *rf, *level, *batch)
	fmt.Printf("virtual duration %v (wall %v, %d events)\n",
		virtual.Round(time.Millisecond), time.Since(start).Round(time.Millisecond), sim.Engine.Events())
	fmt.Printf("throughput  %.0f ops/s\n", float64(totalOps)/virtual.Seconds())
	fmt.Printf("stale reads %.2f%% (oracle ground truth, whole run)\n", 100*sim.StaleRate())
	fmt.Printf("read  lat   %s\n", m.ReadLat.String())
	fmt.Printf("write lat   %s\n", m.WriteLat.String())
	fmt.Printf("errors      timeouts=%d unavailable=%d (last segment)\n", m.Timeouts, m.Unavailable)

	u := sim.Cluster.Usage()
	fmt.Printf("usage       replicaReads=%d replicaWrites=%d coordOps=%d repairs=%d droppedMutations=%d\n",
		u.ReplicaReads, u.ReplicaWrites, u.CoordOps, u.ReadRepairs, u.DroppedMuts)
	if u.Joins > 0 || u.Decommissions > 0 {
		fmt.Printf("membership  joins=%d decommissions=%d streamed %d cells / %d KiB in %d chunks\n",
			u.Joins, u.Decommissions, u.StreamedCells, u.StreamedBytes>>10, u.StreamChunks)
	}
	if *hotcache {
		served := u.CacheHits + u.CacheMisses
		hitShare := 0.0
		if served > 0 {
			hitShare = float64(u.CacheHits) / float64(served)
		}
		fmt.Printf("hotcache    hits=%d (%.1f%% of servable) staleServed=%d fills=%d invalidations=%d expired=%d ringEvicted=%d hotKeys=%d promotions=%d\n",
			u.CacheHits, 100*hitShare, u.CacheStaleServed, u.CacheFills,
			u.CacheInvalidations, u.CacheExpired, u.CacheRingEvicted,
			u.HotKeysNow, u.HotPromotions)
	}
	if *gossipOn {
		fmt.Printf("gossip      rounds=%d suspicions=%d deadDeclared=%d ringEvents=%d refusals=%d wrongOwnerRetries=%d agreement=%.2f\n",
			u.GossipRounds, u.GossipSuspicions, u.GossipDeadDeclared, u.GossipEvents,
			u.NotOwnerReplies, u.WrongOwnerRetries, sim.ViewAgreement())
	}
	meter := sim.Transport.Meter()
	interDC, interRegion := meter.BilledBytes()
	bill := experiments.Pricing().Smooth().BillFor(repro.Usage{
		Nodes:            len(sim.Members()),
		Duration:         virtual,
		StoredBytes:      float64(u.StoredBytes),
		InterDCBytes:     float64(interDC),
		InterRegionBytes: float64(interRegion),
	})
	fmt.Printf("bill        %s ($%.4f per M ops)\n", bill, bill.Total()/float64(totalOps)*1e6)
	if ctl != nil {
		fmt.Printf("adaptive    %d decisions, %d level changes\n", len(ctl.Journal()), ctl.LevelChanges())
	}
	if asc != nil {
		asc.Stop()
		log := asc.Log()
		enacted := 0
		for _, d := range log {
			if d.Action.Enacted() {
				enacted++
			}
		}
		fmt.Printf("autoscale   %d control periods, %d enacted, final members %d\n",
			len(log), enacted, len(sim.Members()))
		for _, d := range log {
			if d.Action.Enacted() || d.Action == repro.AutoscaleDeferBoundary {
				fmt.Printf("  @%-8v %-16s node=%-3d members=%d target=%d  %s\n",
					d.At.Round(time.Millisecond), d.Action, d.Node, d.Members, d.Target, d.Reason)
			}
		}
	}
}
