// Command storesim runs ad-hoc workloads against the simulated store
// through the unified Client API: pick a topology, replication factor,
// consistency level (or an adaptive tuner), a workload mix and an
// optional multi-key batch size, and get throughput, latency, staleness,
// resource usage and the priced bill.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
)

func parseLevel(s string) (repro.Level, bool) {
	switch strings.ToUpper(s) {
	case "ONE":
		return repro.One, true
	case "TWO":
		return repro.Two, true
	case "THREE":
		return repro.Three, true
	case "QUORUM":
		return repro.Quorum, true
	case "ALL":
		return repro.All, true
	case "LOCAL_QUORUM":
		return repro.LocalQuorum, true
	case "EACH_QUORUM":
		return repro.EachQuorum, true
	}
	var k int
	if _, err := fmt.Sscanf(s, "K(%d)", &k); err == nil && k > 0 {
		return repro.Count(k), true
	}
	return repro.Level{}, false
}

func main() {
	topoName := flag.String("topology", "g5k", "topology: g5k, ec2, single, geo")
	nodes := flag.Int("nodes", 12, "node count")
	rf := flag.Int("rf", 3, "replication factor")
	level := flag.String("level", "ONE", "consistency level (ONE, TWO, THREE, QUORUM, ALL, LOCAL_QUORUM, EACH_QUORUM, K(n)) or 'harmony:<alpha>'")
	readProp := flag.Float64("reads", 0.5, "read proportion of the mix")
	records := flag.Uint64("records", 10000, "records loaded")
	ops := flag.Uint64("ops", 100000, "operations to run")
	threads := flag.Int("threads", 128, "closed-loop client threads")
	batch := flag.Int("batch", 1, "multi-key batch size (>1 drives BatchGet/BatchPut)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	theta := flag.Float64("theta", 0.99, "zipfian skew")
	engine := flag.String("engine", "mem", "storage engine: mem (volatile map) or lsm (WAL + sorted runs)")
	flag.Parse()

	var topo *repro.Topology
	switch *topoName {
	case "g5k":
		topo = repro.G5KTwoSites(*nodes)
	case "ec2":
		topo = repro.EC2TwoAZ(*nodes)
	case "single":
		topo = repro.SingleDC(*nodes)
	case "geo":
		topo = repro.GeoRegions(*nodes/3, "us-east", "eu-west", "ap-south")
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoName)
		os.Exit(2)
	}

	cfg := repro.Defaults(topo)
	cfg.RF = *rf
	cfg.Seed = *seed
	switch *engine {
	case "mem":
		cfg.Engine = repro.EngineMem
	case "lsm":
		cfg.Engine = repro.EngineLSM
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(2)
	}
	sim := repro.NewSim(topo, cfg)

	var cli repro.Client
	var ctl *repro.Controller
	if alphaStr, ok := strings.CutPrefix(*level, "harmony:"); ok {
		var alpha float64
		if _, err := fmt.Sscanf(alphaStr, "%f", &alpha); err != nil {
			fmt.Fprintf(os.Stderr, "bad harmony tolerance %q\n", alphaStr)
			os.Exit(2)
		}
		cli, ctl = sim.HarmonyClient(alpha)
	} else if lvl, ok := parseLevel(*level); ok {
		cli = sim.StaticClient(lvl, lvl)
	} else {
		fmt.Fprintf(os.Stderr, "bad level %q\n", *level)
		os.Exit(2)
	}

	w := repro.MixWorkload(*records, *readProp, 0, *theta)
	start := time.Now()
	m, err := cli.Run(w, repro.RunOptions{Ops: *ops, Threads: *threads, BatchSize: *batch})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload: %d ops (%.0f%% reads, zipf θ=%.2f) on %d nodes RF %d, level %s, batch %d\n",
		m.Ops, 100**readProp, *theta, topo.N(), *rf, *level, *batch)
	fmt.Printf("virtual duration %v (wall %v, %d events)\n",
		m.Elapsed().Round(time.Millisecond), time.Since(start).Round(time.Millisecond), sim.Engine.Events())
	fmt.Printf("throughput  %.0f ops/s\n", m.Throughput())
	fmt.Printf("stale reads %.2f%% (oracle ground truth)\n", 100*m.StaleRate())
	fmt.Printf("read  lat   %s\n", m.ReadLat.String())
	fmt.Printf("write lat   %s\n", m.WriteLat.String())
	fmt.Printf("errors      timeouts=%d unavailable=%d\n", m.Timeouts, m.Unavailable)

	u := sim.Cluster.Usage()
	fmt.Printf("usage       replicaReads=%d replicaWrites=%d coordOps=%d repairs=%d droppedMutations=%d\n",
		u.ReplicaReads, u.ReplicaWrites, u.CoordOps, u.ReadRepairs, u.DroppedMuts)
	meter := sim.Transport.Meter()
	interDC, interRegion := meter.BilledBytes()
	bill := experiments.Pricing().Smooth().BillFor(repro.Usage{
		Nodes:            topo.N(),
		Duration:         m.Elapsed(),
		StoredBytes:      float64(u.StoredBytes),
		InterDCBytes:     float64(interDC),
		InterRegionBytes: float64(interRegion),
	})
	fmt.Printf("bill        %s ($%.4f per M ops)\n", bill, bill.Total()/float64(m.Ops)*1e6)
	if ctl != nil {
		fmt.Printf("adaptive    %d decisions, %d level changes\n", len(ctl.Journal()), ctl.LevelChanges())
	}
}
