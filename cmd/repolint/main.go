// Command repolint machine-checks the repo's determinism, pool
// lifecycle, sim-purity and error-flow invariants (see internal/analysis
// and its analyzer subpackages).
//
// It speaks two protocols:
//
//	repolint [packages]             # standalone: load, analyze, report
//	go vet -vettool=$(which repolint) ./...   # unitchecker protocol
//
// The vet protocol is the one CI uses: the go command hands the tool a
// JSON .cfg describing one compilation unit (files, import map, export
// data), the tool type-checks against the compiler's export data and
// reports findings as file:line:col lines on stderr, exit 1. The
// -V=full and -flags handshakes exist for the go command's build cache
// and flag discovery.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]
	// go vet handshakes.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("repolint version devel buildID=%s\n", selfID())
			return
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0]) // go vet -vettool mode; exits
		return
	}
	runStandalone(args)
}

// selfID hashes the executable so the go command's build cache
// invalidates vet results whenever the tool changes.
func selfID() string {
	exe, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			return fmt.Sprintf("%x", sum[:12])
		}
	}
	return "unknown"
}

func runStandalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, suite.All())
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d findings\n", len(findings))
		os.Exit(1)
	}
}
