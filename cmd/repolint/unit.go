package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

// vetConfig mirrors the JSON compilation-unit description the go
// command writes for `go vet -vettool` tools (the unitchecker
// protocol). Fields the suite does not consume are omitted.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit described by cfgPath and exits.
func runUnit(cfgPath string) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(raw, cfg); err != nil {
		fatal(fmt.Errorf("decoding %s: %v", cfgPath, err))
	}

	// The go command caches this tool's output per package and may ask
	// for facts-only runs over dependencies. The suite has no
	// cross-package facts, so those runs only need the (empty) vetx
	// file to exist.
	writeVetx(cfg)
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0) // the compiler will report it better
			}
			fatal(err)
		}
		files = append(files, f)
	}

	// Type-check against the compiler's export data, exactly as the
	// x/tools unitchecker does: cfg.ImportMap resolves source import
	// strings to package paths, cfg.PackageFile locates each package's
	// export file, and the gc importer reads them.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatal(err)
	}

	findings := analysis.Run([]*load.Package{{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}}, suite.All())
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func writeVetx(cfg *vetConfig) {
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatal(err)
		}
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
	os.Exit(2)
}
