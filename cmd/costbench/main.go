// Command costbench regenerates the paper's §IV-B per-level cost study:
// the heavy read-update workload at every symmetric consistency level
// with the bill decomposed into instances, storage and network (2013
// us-east-1 prices), plus the billing-granularity view.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	platform := flag.String("platform", "ec2", "platform preset: ec2 (18 VMs, 2 AZs) or g5k (50 nodes, 2 sites)")
	scale := flag.Float64("scale", 0.02, "operation/record scale factor (1 = paper scale)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	hourly := flag.Bool("hourly", false, "also show 2013-style whole-hour instance billing")
	flag.Parse()

	var p experiments.Platform
	switch *platform {
	case "ec2":
		p = experiments.EC2Cost()
	case "g5k":
		p = experiments.G5KCost()
	default:
		fmt.Fprintf(os.Stderr, "unknown platform %q (want ec2 or g5k)\n", *platform)
		os.Exit(2)
	}
	p = p.Scaled(*scale)
	fmt.Printf("platform %s: %d nodes, RF %d, %d ops, %d client threads (scale %.3f)\n",
		p.Name, p.Nodes, p.RF, p.Ops, p.Threads, *scale)

	rows, table := experiments.RunExpB1(p, *seed)
	table.Render(os.Stdout)

	if *hourly {
		t := experiments.NewTable("same runs billed with whole-hour instance rounding (2013 EC2)",
			"level", "duration", "$ total (hourly)", "$ total (per-second)")
		pricing := experiments.Pricing() // hourly granularity
		for _, r := range rows {
			u := r.Usage
			hb := pricing.BillFor(u)
			t.Add(r.Level.String(), u.Duration.Round(time.Second),
				fmt.Sprintf("%.3f", hb.Total()), fmt.Sprintf("%.3f", r.Bill.Total()))
		}
		t.Note("hour rounding quantizes short runs; at the paper's multi-hour durations the orderings match")
		t.Render(os.Stdout)
	}
}
