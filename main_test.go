package repro_test

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain asserts the facade leaks no goroutines: live deployments,
// client futures and the parallel experiment driver must all join or
// defuse their goroutines by the time the package's tests finish.
func TestMain(m *testing.M) { testutil.VerifyNoLeaks(m) }
