package repro

import (
	"time"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/live"
	"repro/internal/monitor"
)

// Live is a deployment of the same store over wall-clock time and
// goroutines — the middleware running for real rather than simulated.
// Operations block the calling goroutine until the result arrives.
type Live struct {
	Engine  *live.Engine
	Cluster *kv.Cluster
	Monitor *monitor.Monitor
}

// NewLive builds a live deployment on topo. latencyScale compresses the
// topology's latencies (0.1 runs a WAN topology ten times faster); pass 1
// for real latencies.
func NewLive(topo *Topology, cfg Config, latencyScale float64) *Live {
	eng := live.New(topo, cfg.Seed)
	if latencyScale > 0 {
		eng.Scale = latencyScale
	}
	var cl *kv.Cluster
	var mon *monitor.Monitor
	eng.Do(func() {
		cl = kv.New(topo, eng, cfg)
		mon = monitor.New(cl.RF(), eng, monitor.DefaultOptions())
		cl.AddHooks(mon.Hooks())
	})
	return &Live{Engine: eng, Cluster: cl, Monitor: mon}
}

// Read performs a blocking read at the given level.
func (l *Live) Read(key string, lvl Level) ReadResult {
	ch := make(chan ReadResult, 1)
	l.Engine.Do(func() {
		l.Cluster.Read(key, lvl, func(r ReadResult) { ch <- r })
	})
	return <-ch
}

// Write performs a blocking write at the given level.
func (l *Live) Write(key string, value []byte, lvl Level) WriteResult {
	ch := make(chan WriteResult, 1)
	l.Engine.Do(func() {
		l.Cluster.Write(key, value, lvl, func(r WriteResult) { ch <- r })
	})
	return <-ch
}

// AdaptiveSession starts a controller over the live monitor and returns a
// blocking session stamped with the tuner's current levels.
func (l *Live) AdaptiveSession(t Tuner, interval time.Duration) (*LiveSession, *Controller) {
	var ctl *core.Controller
	l.Engine.Do(func() {
		ctl = core.NewController(l.Monitor, t, l.Engine, interval)
		ctl.Start()
	})
	return &LiveSession{live: l, ctl: ctl}, ctl
}

// Preload seeds records directly into the replicas.
func (l *Live) Preload(n uint64, key func(uint64) string, value []byte) {
	l.Engine.Do(func() { l.Cluster.Preload(n, key, value) })
}

// Close stops the engine; outstanding timers become no-ops.
func (l *Live) Close() { l.Engine.Close() }

// LiveSession is a blocking session whose levels follow a controller.
type LiveSession struct {
	live *Live
	ctl  *core.Controller
}

// Read blocks until the adaptive read completes.
func (s *LiveSession) Read(key string) ReadResult {
	ch := make(chan ReadResult, 1)
	s.live.Engine.Do(func() {
		s.ctl.Session(s.live.Cluster).Read(key, func(r ReadResult) { ch <- r })
	})
	return <-ch
}

// Write blocks until the adaptive write completes.
func (s *LiveSession) Write(key string, value []byte) WriteResult {
	ch := make(chan WriteResult, 1)
	s.live.Engine.Do(func() {
		s.ctl.Session(s.live.Cluster).Write(key, value, func(r WriteResult) { ch <- r })
	})
	return <-ch
}
