package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/live"
	"repro/internal/monitor"
	"repro/internal/ycsb"
)

// Live is a deployment of the same store over wall-clock time and
// goroutines — the middleware running for real rather than simulated.
// All client traffic goes through the unified Client API (Live.Client
// and the session-flavored shorthands below); clients are safe for
// concurrent use from many goroutines.
type Live struct {
	Engine  *live.Engine
	Cluster *kv.Cluster
	Monitor *monitor.Monitor
}

// NewLive builds a live deployment on topo. latencyScale compresses the
// topology's latencies (0.1 runs a WAN topology ten times faster); pass 1
// for real latencies.
func NewLive(topo *Topology, cfg Config, latencyScale float64) *Live {
	eng := live.New(topo, cfg.Seed)
	if latencyScale > 0 {
		eng.Scale = latencyScale
	}
	var cl *kv.Cluster
	var mon *monitor.Monitor
	eng.Do(func() {
		cl = kv.New(topo, eng, cfg)
		mon = monitor.New(cl.RF(), eng, monitor.DefaultOptions())
		cl.AddHooks(mon.Hooks())
	})
	return &Live{Engine: eng, Cluster: cl, Monitor: mon}
}

// Client wraps a session in the unified Client API. Operations may be
// issued from any goroutine; the engine lock serializes store access.
func (l *Live) Client(sess Session) Client { return &liveClient{live: l, sess: sess} }

// StaticClient returns a client pinned to fixed levels.
func (l *Live) StaticClient(read, write Level) Client {
	return l.Client(l.StaticSession(read, write))
}

// HarmonyClient returns a client whose levels Harmony re-tunes to keep
// the stale-read rate under alpha, with the controller driving it.
func (l *Live) HarmonyClient(alpha float64, interval time.Duration) (Client, *Controller) {
	sess, ctl := l.AdaptiveSession(NewHarmonyTuner(alpha, l.Cluster.RF()), interval)
	return l.Client(sess), ctl
}

// HarmonyHotClient returns a client driven by the hot-key-aware Harmony
// tuner (see Sim.HarmonyHotClient); requires Config.HotCache for the hot
// set to populate.
func (l *Live) HarmonyHotClient(alpha float64, interval time.Duration) (Client, *Controller) {
	sess, ctl := l.AdaptiveSession(NewHarmonyHotTuner(alpha, l.Cluster), interval)
	return l.Client(sess), ctl
}

// HotKeys reports the cluster's current hot set in sorted order (empty
// without Config.HotCache).
func (l *Live) HotKeys() []string {
	var keys []string
	l.Engine.Do(func() { keys = l.Cluster.HotKeys() })
	return keys
}

// StaticSession returns a session pinned to fixed levels. Sessions must
// be driven through Client (or inside Engine.Do): their methods assume
// the engine lock is held.
func (l *Live) StaticSession(read, write Level) Session {
	return kv.StaticSession{Cluster: l.Cluster, ReadLevel: read, WriteLevel: write}
}

// AdaptiveSession starts a controller over the live monitor and returns
// the adaptive session with its controller. Like StaticSession, the
// session itself must be driven through Client.
func (l *Live) AdaptiveSession(t Tuner, interval time.Duration) (Session, *Controller) {
	var ctl *core.Controller
	var sess Session
	l.Engine.Do(func() {
		ctl = core.NewController(l.Monitor, t, l.Engine, interval)
		ctl.Start()
		sess = ctl.Session(l.Cluster)
	})
	return sess, ctl
}

// Preload seeds records directly into the replicas.
func (l *Live) Preload(n uint64, key func(uint64) string, value []byte) {
	l.Engine.Do(func() { l.Cluster.Preload(n, key, value) })
}

// StaleRate reports the oracle's measured stale-read fraction so far.
func (l *Live) StaleRate() float64 {
	var r float64
	l.Engine.Do(func() { r = l.Cluster.Oracle().StaleRate() })
	return r
}

// Join adds topology node id to the live cluster (snapshot-streaming
// bootstrap, placement flip, warming — see Sim.Join). The change
// progresses on the engine's own goroutines; poll State to observe it.
func (l *Live) Join(id NodeID) {
	l.Engine.Do(func() { l.Cluster.Join(id) })
}

// Decommission removes member id from the live cluster after streaming
// its ownership to the new owners.
func (l *Live) Decommission(id NodeID) {
	l.Engine.Do(func() { l.Cluster.Decommission(id) })
}

// Autoscale starts the cost-loop controller over the live cluster (see
// Sim.Autoscale); the control loop runs on the engine's timers.
func (l *Live) Autoscale(cfg AutoscaleConfig) *Autoscaler {
	if cfg.Candidates == nil {
		cfg.Candidates = l.Cluster.Topology().Nodes()
	}
	var ctl *autoscale.Controller
	l.Engine.Do(func() {
		ctl = autoscale.New(l.Cluster, l.Monitor, l.Engine, cfg)
		ctl.Start()
	})
	return ctl
}

// Members returns the current ring members.
func (l *Live) Members() []NodeID {
	var m []NodeID
	l.Engine.Do(func() { m = l.Cluster.Members() })
	return m
}

// State reports a node's combined membership/failure state.
func (l *Live) State(id NodeID) NodeState {
	var s NodeState
	l.Engine.Do(func() { s = l.Cluster.State(id) })
	return s
}

// Close stops the engine (outstanding timers become no-ops) and
// releases the cluster's storage resources (file-backed WALs).
func (l *Live) Close() {
	l.Engine.Close()
	l.Engine.Do(func() { l.Cluster.Close() })
}

// liveClient implements Client over the wall-clock engine. Futures are
// resolved by store callbacks running under the engine lock; waiting
// goroutines block on a channel, so any number of client goroutines can
// operate concurrently.
type liveClient struct {
	live *Live
	sess Session
}

func (c *liveClient) Session() Session { return c.sess }

func (c *liveClient) Get(ctx context.Context, key string, opts ...OpOption) ReadResult {
	return c.GetAsync(ctx, key, opts...).Wait(ctx)
}

func (c *liveClient) Put(ctx context.Context, key string, value []byte, opts ...OpOption) WriteResult {
	return c.PutAsync(ctx, key, value, opts...).Wait(ctx)
}

func (c *liveClient) Delete(ctx context.Context, key string, opts ...OpOption) WriteResult {
	return c.DeleteAsync(ctx, key, opts...).Wait(ctx)
}

func (c *liveClient) BatchGet(ctx context.Context, keys []string, opts ...OpOption) []ReadResult {
	return c.BatchGetAsync(ctx, keys, opts...).Wait(ctx)
}

func (c *liveClient) BatchPut(ctx context.Context, ops []PutOp, opts ...OpOption) []WriteResult {
	return c.BatchPutAsync(ctx, ops, opts...).Wait(ctx)
}

// armDeadline schedules a wall-clock deadline. It deliberately bypasses
// the engine (whose timers are compressed by the latency scale): a
// client deadline is a promise in real time, and resolving a future
// touches no cluster state, so no engine lock is needed.
func (c *liveClient) armDeadline(d time.Duration, fail func()) {
	if d > 0 {
		time.AfterFunc(d, fail) //repolint:allow determinism live client deadlines are wall-clock promises, deliberately unscaled
	}
}

func (c *liveClient) GetAsync(ctx context.Context, key string, opts ...OpOption) *ReadFuture {
	o := resolveOpts(opts)
	f := newFuture(nil, func(err error) ReadResult { return ReadResult{Err: err, Key: key} })
	if ctx.Err() != nil {
		f.resolve(ReadResult{Err: ErrCanceled, Key: key})
		return f
	}
	c.live.Engine.Do(func() {
		if o.level != nil {
			c.live.Cluster.Read(key, *o.level, f.resolve)
		} else {
			c.sess.Read(key, f.resolve)
		}
	})
	c.armDeadline(o.deadline, func() { f.resolve(ReadResult{Err: ErrDeadline, Key: key}) })
	return f
}

func (c *liveClient) PutAsync(ctx context.Context, key string, value []byte, opts ...OpOption) *WriteFuture {
	o := resolveOpts(opts)
	f := newFuture(nil, func(err error) WriteResult { return WriteResult{Err: err, Key: key} })
	if ctx.Err() != nil {
		f.resolve(WriteResult{Err: ErrCanceled, Key: key})
		return f
	}
	c.live.Engine.Do(func() {
		if o.level != nil {
			c.live.Cluster.Write(key, value, *o.level, f.resolve)
		} else {
			c.sess.Write(key, value, f.resolve)
		}
	})
	c.armDeadline(o.deadline, func() { f.resolve(WriteResult{Err: ErrDeadline, Key: key}) })
	return f
}

func (c *liveClient) DeleteAsync(ctx context.Context, key string, opts ...OpOption) *WriteFuture {
	o := resolveOpts(opts)
	f := newFuture(nil, func(err error) WriteResult { return WriteResult{Err: err, Key: key} })
	if ctx.Err() != nil {
		f.resolve(WriteResult{Err: ErrCanceled, Key: key})
		return f
	}
	c.live.Engine.Do(func() {
		if o.level != nil {
			c.live.Cluster.Delete(key, *o.level, f.resolve)
		} else {
			c.sess.Delete(key, f.resolve)
		}
	})
	c.armDeadline(o.deadline, func() { f.resolve(WriteResult{Err: ErrDeadline, Key: key}) })
	return f
}

func (c *liveClient) BatchGetAsync(ctx context.Context, keys []string, opts ...OpOption) *BatchGetFuture {
	o := resolveOpts(opts)
	f := newFuture(nil, func(err error) []ReadResult { return failedBatchReads(keys, err) })
	if ctx.Err() != nil {
		f.resolve(failedBatchReads(keys, ErrCanceled))
		return f
	}
	c.live.Engine.Do(func() {
		if o.level != nil {
			c.live.Cluster.ReadBatch(keys, *o.level, f.resolve)
		} else {
			c.sess.BatchRead(keys, f.resolve)
		}
	})
	c.armDeadline(o.deadline, func() { f.resolve(failedBatchReads(keys, ErrDeadline)) })
	return f
}

func (c *liveClient) BatchPutAsync(ctx context.Context, ops []PutOp, opts ...OpOption) *BatchPutFuture {
	o := resolveOpts(opts)
	f := newFuture(nil, func(err error) []WriteResult { return failedBatchWrites(ops, err) })
	if ctx.Err() != nil {
		f.resolve(failedBatchWrites(ops, ErrCanceled))
		return f
	}
	c.live.Engine.Do(func() {
		if o.level != nil {
			c.live.Cluster.WriteBatch(ops, *o.level, f.resolve)
		} else {
			c.sess.BatchWrite(ops, f.resolve)
		}
	})
	c.armDeadline(o.deadline, func() { f.resolve(failedBatchWrites(ops, ErrDeadline)) })
	return f
}

// Run drives a workload to completion over wall-clock time. The runner
// issues and accounts operations entirely under the engine lock (Start
// runs inside Do; completions run inside engine handlers), so the
// session is driven exactly as in simulation.
func (c *liveClient) Run(w Workload, o RunOptions) (*Metrics, error) {
	var r *ycsb.Runner
	var err error
	done := make(chan struct{})
	c.live.Engine.Do(func() {
		r, err = ycsb.NewRunner(c.sess, w, c.live.Engine, c.live.Cluster.Config().Seed)
		if err != nil {
			return
		}
		applyRunOptions(r, o)
		r.OnDone = func() { close(done) }
		if !o.NoPreload {
			c.live.Cluster.Preload(w.RecordCount, r.Keys, r.Value())
		}
		r.Start()
	})
	if err != nil {
		return nil, err
	}
	select {
	case <-done:
	case <-time.After(10 * time.Minute): //repolint:allow determinism live-mode watchdog; the sim path never reaches this select
		return nil, fmt.Errorf("repro: live workload did not finish within 10 minutes")
	}
	var m *Metrics
	c.live.Engine.Do(func() { m = r.Metrics() })
	return m, nil
}
