// Package repro is a Go reproduction of "Self-Adaptive Cost-Efficient
// Consistency Management in the Cloud" (Chihoub, IPDPS 2013 PhD Forum):
// a Cassandra-like replicated key-value store with per-operation tunable
// consistency, the Harmony self-adaptive consistency tuner, the Bismar
// cost-efficiency tuner, and application behavior modeling — plus the
// deterministic cluster simulator the evaluation runs on and a real-time
// engine for live use.
//
// # The Client API
//
// Both backends — the discrete-event simulation (NewSim) and the
// wall-clock deployment (NewLive) — serve the same unified Client
// interface: Get, Put, Delete, BatchGet and BatchPut, each in a
// blocking and a future-returning (*Async) form, all taking a
// context.Context and per-operation options (WithLevel overrides the
// session's consistency level, WithDeadline bounds the client-visible
// wait). Multi-key batches are coordinated as true batches in the
// store — one coordinator admission and at most one request message per
// replica — so they amortize the per-operation overhead the paper's
// cost model prices.
//
//	topo := repro.G5KTwoSites(12)
//	sim := repro.NewSim(topo, repro.Defaults(topo))
//	cli, ctl := sim.HarmonyClient(0.05) // tolerate ≤5% stale reads
//	cli.Put(ctx, "k", []byte("v"))
//	res := cli.BatchGet(ctx, []string{"a", "b"}, repro.WithLevel(repro.Quorum))
//	m, _ := cli.Run(repro.WorkloadB(1000), repro.RunOptions{Ops: 50000})
//
// Consistency levels are re-tuned behind the client by the controller
// returned next to it: HarmonyClient bounds the stale-read rate,
// BismarClient maximizes consistency-cost efficiency, BehaviorClient
// follows a fitted application-behaviour model, and StaticClient pins
// levels. Client.Run drives YCSB-style workloads (RunOptions.BatchSize
// switches the driver to multi-key batches) through the same session
// machinery on either backend.
//
// See README.md for a walkthrough, examples/ for runnable programs and
// internal/experiments for the paper's evaluation harness.
package repro

import (
	"time"

	"repro/internal/autoscale"
	"repro/internal/behavior"
	"repro/internal/bismar"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/provision"
	"repro/internal/storage"
	"repro/internal/ycsb"
)

// Store types.
type (
	// Level is a per-operation consistency level.
	Level = kv.Level
	// Session issues reads and writes; adaptive sessions re-tune their
	// levels at runtime.
	Session = kv.Session
	// ReadResult reports a completed read.
	ReadResult = kv.ReadResult
	// WriteResult reports a completed write.
	WriteResult = kv.WriteResult
	// Config parameterizes the store.
	Config = kv.Config
	// Topology describes nodes, datacenters and latency laws.
	Topology = netsim.Topology
	// NodeID identifies a cluster node.
	NodeID = netsim.NodeID
	// Workload is a YCSB-style workload definition.
	Workload = ycsb.Workload
	// Metrics aggregates a workload run's measurements.
	Metrics = ycsb.Metrics
	// Decision is a tuner's choice for one control period.
	Decision = core.Decision
	// Tuner converts monitoring snapshots into level decisions.
	Tuner = core.Tuner
	// Controller runs a tuner periodically.
	Controller = core.Controller
	// Snapshot is the monitor's periodic output.
	Snapshot = monitor.Snapshot
	// Pricing is a cloud price catalog.
	Pricing = cost.Pricing
	// Bill is the three-part cost decomposition.
	Bill = cost.Bill
	// Usage is the metered consumption a bill prices.
	Usage = cost.Usage
	// Deployment holds Bismar's operator-known constants.
	Deployment = bismar.Deployment
)

// The fixed consistency levels.
var (
	One         = kv.One
	Two         = kv.Two
	Three       = kv.Three
	Quorum      = kv.Quorum
	All         = kv.All
	LocalQuorum = kv.LocalQuorum
	EachQuorum  = kv.EachQuorum
)

// Count returns the generalized "k replicas" level.
func Count(k int) Level { return kv.Count(k) }

// Storage engines (Config.Engine). EngineMem is the volatile map engine
// (the default): Cluster.Crash loses everything it held. EngineLSM is
// the durable WAL + LSM-lite engine: a crash loses only the un-fsynced
// WAL tail, and Cluster.Restart replays the rest before hinted handoff
// and anti-entropy close the gap. Config.WALSyncBytes, Config.MaxRuns
// and Config.WALDir tune it (a WALDir makes the live engine pay real
// file I/O for WAL appends and fsyncs).
const (
	EngineMem = storage.Mem
	EngineLSM = storage.LSM
)

// RecoverStats reports what a node's engine rebuilt on Cluster.Restart.
type RecoverStats = storage.RecoverStats

// NodeState is a node's combined membership/failure status (Sim.State,
// Live.State). The cluster's member set is elastic: Join adds a topology
// node to the ring through snapshot-streaming bootstrap, Decommission
// streams a member's ownership out before removing it, and a joining or
// restarted node passes through a warming window (Config.WarmupDuration)
// in which read coordinators deprioritize it until it has converged.
type NodeState = kv.NodeState

// Node states.
const (
	StateNotMember      = kv.StateNotMember
	StateLive           = kv.StateLive
	StateFailed         = kv.StateFailed
	StateCrashed        = kv.StateCrashed
	StateBootstrapping  = kv.StateBootstrapping
	StateWarming        = kv.StateWarming
	StateLeaving        = kv.StateLeaving
	StateDecommissioned = kv.StateDecommissioned
)

// Topology presets (see internal/netsim).
var (
	// EC2TwoAZ builds n VMs across two us-east-1 availability zones.
	EC2TwoAZ = netsim.EC2TwoAZ
	// G5KTwoSites builds n bare-metal nodes across two Grid'5000 sites.
	G5KTwoSites = netsim.G5KTwoSites
	// SingleDC builds n nodes in one datacenter.
	SingleDC = netsim.SingleDC
	// GeoRegions builds one DC per named region.
	GeoRegions = netsim.GeoRegions
)

// Defaults returns a working store configuration for a topology.
func Defaults(topo *Topology) Config {
	cfg := kv.DefaultConfig()
	if topo.N() < cfg.RF {
		cfg.RF = topo.N()
	}
	return cfg
}

// Workload presets (see internal/ycsb).
var (
	WorkloadA       = ycsb.WorkloadA
	WorkloadB       = ycsb.WorkloadB
	WorkloadC       = ycsb.WorkloadC
	WorkloadD       = ycsb.WorkloadD
	WorkloadF       = ycsb.WorkloadF
	HeavyReadUpdate = ycsb.HeavyReadUpdate
	MixWorkload     = ycsb.Mix
)

// Key-popularity distributions for MixWorkload.
const (
	DistZipfian = ycsb.DistZipfian
	DistUniform = ycsb.DistUniform
	DistLatest  = ycsb.DistLatest
)

// EC2Pricing2013 is the paper-era us-east-1 price catalog.
func EC2Pricing2013() Pricing { return cost.EC2East2013() }

// Provisioning and autoscaling (§V future work, closed end to end): the
// optimizer searches instance types and cluster sizes for the cheapest
// deployment meeting consistency, throughput and failure constraints,
// and the autoscale controller (Sim.Autoscale, Live.Autoscale) enacts
// its recommendation through Join/Decommission at runtime.
type (
	// NodeType is a leasable instance profile.
	NodeType = provision.NodeType
	// ProvisionConstraints bound acceptable deployments.
	ProvisionConstraints = provision.Constraints
	// ProvisionWorkload is the offered load a deployment must sustain.
	ProvisionWorkload = provision.Workload
	// ProvisionPlan is one candidate deployment with its predictions.
	ProvisionPlan = provision.Plan
	// AutoscaleConfig parameterizes the autoscale controller.
	AutoscaleConfig = autoscale.Config
	// AutoscaleDecision is one control period's journal entry.
	AutoscaleDecision = autoscale.Decision
	// AutoscaleAction is what a control period did (join, decommission,
	// or a named deferral).
	AutoscaleAction = autoscale.Action
	// Autoscaler is the running cost-loop controller.
	Autoscaler = autoscale.Controller
)

// Autoscale actions, for inspecting decision logs.
const (
	AutoscaleHold            = autoscale.ActionHold
	AutoscaleJoin            = autoscale.ActionJoin
	AutoscaleDecommission    = autoscale.ActionDecommission
	AutoscaleDeferHysteresis = autoscale.ActionDeferHysteresis
	AutoscaleDeferCooldown   = autoscale.ActionDeferCooldown
	AutoscaleDeferSettling   = autoscale.ActionDeferSettling
	AutoscaleDeferBoundary   = autoscale.ActionDeferBoundary
	AutoscaleBlockedFloor    = autoscale.ActionBlockedFloor
	AutoscaleBlockedCeiling  = autoscale.ActionBlockedCeiling
	AutoscaleBlockedNoSpare  = autoscale.ActionBlockedNoSpare
)

// DefaultNodeCatalog is the 2013-flavoured EC2 instance menu the
// provisioning examples search over.
func DefaultNodeCatalog() []NodeType { return provision.DefaultCatalog() }

// OptimizeProvision searches the catalog for the cheapest feasible
// deployment; see internal/provision.
func OptimizeProvision(catalog []NodeType, w ProvisionWorkload, c ProvisionConstraints, maxNodes int) (ProvisionPlan, []ProvisionPlan) {
	return provision.Optimize(catalog, w, c, maxNodes)
}

// NewHarmonyTuner returns the Harmony tuner: smallest read level whose
// estimated stale-read rate stays under alpha (§III-A).
func NewHarmonyTuner(alpha float64, rf int) Tuner { return harmony.New(alpha, rf) }

// NewHarmonyHotTuner returns the hot-key-aware Harmony tuner: the
// per-key-estimator decision governs the tail, and each control period
// every key in the cluster's hot set (Config.HotCache) is pinned to the
// smallest read level holding its own estimated stale rate under alpha.
func NewHarmonyHotTuner(alpha float64, cluster *kv.Cluster) Tuner {
	return harmony.NewHot(alpha, cluster)
}

// NewBismarTuner returns the Bismar tuner: the consistency level with the
// highest consistency-cost efficiency (§III-B).
func NewBismarTuner(dep Deployment) Tuner { return bismar.New(dep) }

// NewStaticTuner pins fixed levels.
func NewStaticTuner(read, write Level) Tuner { return core.StaticTuner{Read: read, Write: write} }

// Behavior modeling (§III-C).
type (
	// Trace is an application access log.
	Trace = behavior.Trace
	// Timeline is the per-period feature series of a trace.
	Timeline = behavior.Timeline
	// BehaviorModel is the fitted state model with per-state policies.
	BehaviorModel = behavior.Model
	// BehaviorOptions tunes the modeling process.
	BehaviorOptions = behavior.Options
	// Features summarize one period of application behaviour.
	Features = behavior.Features
	// Policy is a state's consistency prescription.
	Policy = behavior.Policy
)

// BuildTimeline cuts a trace into fixed periods with feature extraction.
func BuildTimeline(trace Trace, period time.Duration) Timeline {
	return behavior.BuildTimeline(trace, period)
}

// BuildBehaviorModel clusters a timeline into application states and
// associates each state with a consistency policy.
func BuildBehaviorModel(tl Timeline, opts BehaviorOptions) (*BehaviorModel, error) {
	return behavior.BuildModel(tl, opts)
}

// DefaultBehaviorOptions explores 2..6 states with the generic rules.
func DefaultBehaviorOptions() BehaviorOptions { return behavior.DefaultOptions() }

// Trace and model persistence for the offline workflow (collect one day,
// model later, ship the model to the runtime classifier).
var (
	// ReadTrace parses a JSON trace written by Trace.WriteTo.
	ReadTrace = behavior.ReadTrace
	// ReadBehaviorModel parses a JSON model written by Model.WriteTo.
	ReadBehaviorModel = behavior.ReadModel
)
